#include "src/allocators/expandable_segments.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace stalloc {

ExpandableSegmentsAllocator::ExpandableSegmentsAllocator(SimDevice* device,
                                                         ExpandableSegmentsConfig config)
    : device_(device), config_(config) {
  small_pool_ = std::make_unique<CachingAllocator>(device);
  // Our live_ ledger covers small-pool blocks; the inner pool contributes segments only (see
  // AppendHeapSegments), never its own snapshots.
  small_pool_->SuppressHeapSnapshots();
}

ExpandableSegmentsAllocator::~ExpandableSegmentsAllocator() {
  for (auto& [stream, seg] : streams_) {
    ReleaseSegment(seg);
  }
}

void ExpandableSegmentsAllocator::ReleaseSegment(StreamSegment& seg) {
  for (const auto& [off, handle] : seg.granule_handles) {
    device_->MemUnmap(seg.va, off, SimDevice::kGranularity);
    device_->MemRelease(handle);
  }
  seg.granule_handles.clear();
  device_->FreeVa(seg.va);
  seg.va = 0;
}

ExpandableSegmentsAllocator::StreamSegment& ExpandableSegmentsAllocator::SegmentFor(
    StreamId stream) {
  auto it = streams_.find(stream);
  if (it != streams_.end()) {
    return it->second;
  }
  StreamSegment seg;
  seg.va_size = config_.va_size != 0 ? AlignUp(config_.va_size, SimDevice::kGranularity)
                                     : AlignUp(device_->capacity(), SimDevice::kGranularity);
  auto va = device_->ReserveVa(seg.va_size);
  STALLOC_CHECK(va.has_value(), << "VA reservation failed");
  seg.va = *va;
  return streams_.emplace(stream, std::move(seg)).first->second;
}

uint64_t ExpandableSegmentsAllocator::mapped_bytes() const {
  uint64_t total = 0;
  for (const auto& [stream, seg] : streams_) {
    total += seg.mapped_end;
  }
  return total;
}

uint64_t ExpandableSegmentsAllocator::ReservedBytes() const {
  return mapped_bytes() + small_pool_->ReservedBytes();
}

std::optional<uint64_t> ExpandableSegmentsAllocator::DoMalloc(uint64_t size,
                                                              const RequestContext& ctx) {
  if (IsSmall(size)) {
    return small_pool_->Malloc(size, ctx);
  }
  StreamSegment& seg = SegmentFor(ctx.stream);
  const uint64_t rounded = AlignUp(size, 512);
  auto off = LargeMalloc(seg, rounded);
  if (!off.has_value()) {
    return std::nullopt;
  }
  block_stream_.emplace(seg.va + *off, ctx.stream);
  return seg.va + *off;
}

void ExpandableSegmentsAllocator::DoFree(uint64_t addr, uint64_t size) {
  if (IsSmall(size)) {
    STALLOC_CHECK(small_pool_->Free(addr));
    return;
  }
  auto sit = block_stream_.find(addr);
  STALLOC_CHECK(sit != block_stream_.end(), << "expandable segments: unknown address " << addr);
  StreamSegment& seg = streams_.at(sit->second);
  block_stream_.erase(sit);
  LargeFree(seg, addr - seg.va);
}

std::optional<uint64_t> ExpandableSegmentsAllocator::LargeMalloc(StreamSegment& seg,
                                                                 uint64_t rounded) {
  // Best fit among free blocks of the segment.
  auto best = seg.free_list.PopBestFit(rounded);
  if (!best.has_value()) {
    // No hole fits: grow the frontier. If a free block ends exactly at the frontier we only need
    // the difference.
    uint64_t tail_free = 0;
    if (!seg.blocks.empty()) {
      auto last = std::prev(seg.blocks.end());
      if (last->second.free && last->second.off + last->second.size == seg.mapped_end) {
        tail_free = last->second.size;
      }
    }
    const uint64_t need = rounded > tail_free ? rounded - tail_free : 0;
    if (need > 0 && !Grow(seg, AlignUp(need, SimDevice::kGranularity))) {
      return std::nullopt;
    }
    best = seg.free_list.PopBestFit(rounded);
    STALLOC_CHECK(best.has_value(), << "expandable segment grow did not produce a fit");
  }
  const uint64_t off = best->second;
  auto bit = seg.blocks.find(off);
  STALLOC_CHECK(bit != seg.blocks.end() && bit->second.free);
  bit->second.free = false;
  // Split the remainder back into the free list (virtual space: always worth splitting).
  if (bit->second.size - rounded >= 512) {
    Block rest;
    rest.off = off + rounded;
    rest.size = bit->second.size - rounded;
    rest.free = true;
    bit->second.size = rounded;
    // The remainder lands immediately after `bit` in offset order: O(1) hinted insert.
    seg.blocks.emplace_hint(std::next(bit), rest.off, rest);
    seg.free_list.Insert(rest.size, rest.off);
  }
  return off;
}

bool ExpandableSegmentsAllocator::Grow(StreamSegment& seg, uint64_t bytes) {
  STALLOC_CHECK_EQ(bytes % SimDevice::kGranularity, 0u);
  if (seg.mapped_end + bytes > seg.va_size) {
    return false;  // virtual reservation exhausted
  }
  // Map one granule handle at a time, as PyTorch does (granular handles allow partial unmap).
  std::vector<std::pair<uint64_t, MemHandle>> created;
  for (uint64_t off = seg.mapped_end; off < seg.mapped_end + bytes;
       off += SimDevice::kGranularity) {
    auto h = device_->MemCreate(SimDevice::kGranularity);
    if (!h.has_value()) {
      // Device OOM: let the small pool return cached segments and *other* streams trim, then
      // retry once. The growing segment itself must not be trimmed — its frontier is the very
      // region being extended.
      small_pool_->EmptyCache();
      for (auto& [stream, other] : streams_) {
        if (&other == &seg) {
          continue;
        }
        const uint64_t saved = config_.trim_threshold;
        config_.trim_threshold = 1;
        TrimTail(other);
        config_.trim_threshold = saved;
      }
      h = device_->MemCreate(SimDevice::kGranularity);
    }
    if (!h.has_value()) {
      // Roll back partial growth.
      for (auto& [o, handle] : created) {
        device_->MemUnmap(seg.va, o, SimDevice::kGranularity);
        device_->MemRelease(handle);
      }
      return false;
    }
    STALLOC_CHECK(device_->MemMap(seg.va, off, *h) == DeviceStatus::kOk);
    created.emplace_back(off, *h);
  }
  for (auto& [off, handle] : created) {
    seg.granule_handles.emplace(off, handle);
  }

  // Extend the tail free block or open a new one.
  const uint64_t old_end = seg.mapped_end;
  seg.mapped_end += bytes;
  if (!seg.blocks.empty()) {
    auto last = std::prev(seg.blocks.end());
    if (last->second.free && last->second.off + last->second.size == old_end) {
      seg.free_list.Erase(last->second.size, last->second.off);
      last->second.size += bytes;
      seg.free_list.Insert(last->second.size, last->second.off);
      return true;
    }
  }
  Block block;
  block.off = old_end;
  block.size = bytes;
  block.free = true;
  seg.blocks.emplace(block.off, block);
  seg.free_list.Insert(block.size, block.off);
  return true;
}

void ExpandableSegmentsAllocator::LargeFree(StreamSegment& seg, uint64_t off) {
  auto it = seg.blocks.find(off);
  STALLOC_CHECK(it != seg.blocks.end() && !it->second.free,
                << "expandable segments: free of unknown offset " << off);
  it->second.free = true;
  Coalesce(seg, it);
  TrimTail(seg);
}

void ExpandableSegmentsAllocator::Coalesce(StreamSegment& seg,
                                           std::map<uint64_t, Block>::iterator it) {
  auto next = std::next(it);
  if (next != seg.blocks.end() && next->second.free &&
      it->second.off + it->second.size == next->second.off) {
    seg.free_list.Erase(next->second.size, next->second.off);
    it->second.size += next->second.size;
    seg.blocks.erase(next);
  }
  if (it != seg.blocks.begin()) {
    auto prev = std::prev(it);
    if (prev->second.free && prev->second.off + prev->second.size == it->second.off) {
      seg.free_list.Erase(prev->second.size, prev->second.off);
      prev->second.size += it->second.size;
      seg.blocks.erase(it);
      it = prev;
    }
  }
  seg.free_list.Insert(it->second.size, it->second.off);
}

void ExpandableSegmentsAllocator::TrimTail(StreamSegment& seg) {
  if (seg.blocks.empty()) {
    return;
  }
  auto last = std::prev(seg.blocks.end());
  if (!last->second.free || last->second.off + last->second.size != seg.mapped_end) {
    return;
  }
  if (last->second.size < config_.trim_threshold) {
    return;
  }
  // Unmap whole granules above the free block's (granularity-aligned) start.
  const uint64_t new_end = AlignUp(last->second.off, SimDevice::kGranularity);
  if (new_end >= seg.mapped_end) {
    return;
  }
  for (uint64_t off = new_end; off < seg.mapped_end; off += SimDevice::kGranularity) {
    auto hit = seg.granule_handles.find(off);
    STALLOC_CHECK(hit != seg.granule_handles.end());
    STALLOC_CHECK(device_->MemUnmap(seg.va, off, SimDevice::kGranularity) == DeviceStatus::kOk);
    STALLOC_CHECK(device_->MemRelease(hit->second) == DeviceStatus::kOk);
    seg.granule_handles.erase(hit);
  }
  seg.free_list.Erase(last->second.size, last->second.off);
  if (last->second.off < new_end) {
    last->second.size = new_end - last->second.off;
    seg.free_list.Insert(last->second.size, last->second.off);
  } else {
    seg.blocks.erase(last);
  }
  seg.mapped_end = new_end;
}

void ExpandableSegmentsAllocator::EmptyCache() {
  small_pool_->EmptyCache();
  const uint64_t saved = config_.trim_threshold;
  config_.trim_threshold = 1;
  for (auto& [stream, seg] : streams_) {
    TrimTail(seg);
  }
  config_.trim_threshold = saved;
}

void ExpandableSegmentsAllocator::AppendHeapSegments(
    std::vector<telemetry::HeapSegment>* out) const {
  // Only the mapped prefix of each stream's VA reservation is real reserved memory.
  for (const auto& [stream, seg] : streams_) {
    if (seg.mapped_end == 0) {
      continue;
    }
    telemetry::HeapSegment s;
    s.base = seg.va;
    s.size = seg.mapped_end;
    s.stream = stream;
    s.pool = "expandable";
    out->push_back(std::move(s));
  }
  small_pool_->AppendHeapSegments(out);
}

}  // namespace stalloc
