// PagedKVAllocator: a vLLM-style paged KV-cache allocator — the serving-native baseline.
//
// vLLM's PagedAttention sidesteps fragmentation by serving the KV cache from a pool of
// fixed-size blocks: any free block satisfies any block request, so external fragmentation is
// zero by construction and the only waste is internal (the tail of the last block of each
// sequence). This allocator reproduces that policy on SimDevice:
//   * requests <= block_bytes are served from the block pool. The pool grows in slabs of
//     slab_blocks contiguous blocks (one cudaMalloc each); freed blocks return to a free list
//     and are reused lowest-address-first, deterministically;
//   * larger requests (weights, prefill activations) bypass the pool with a native cudaMalloc,
//     exactly as vLLM leaves non-KV tensors to the framework allocator.
//
// Sized to the workload (block_bytes == servesim's KvBlockBytes), every KV allocation is a pool
// hit; sized wrong, the pool's internal waste shows up as reduced memory efficiency — the
// page-granularity sensitivity the serving benches measure.

#ifndef SRC_ALLOCATORS_PAGED_KV_H_
#define SRC_ALLOCATORS_PAGED_KV_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string_view>
#include <vector>

#include "src/allocators/allocator.h"
#include "src/common/units.h"
#include "src/gpu/sim_device.h"

namespace stalloc {

struct PagedKVConfig {
  // Pool page size. Requests of at most this many bytes consume one block each.
  uint64_t block_bytes = 2 * MiB;
  // Blocks acquired per device allocation when the free list runs dry.
  uint64_t slab_blocks = 64;
};

class PagedKVAllocator final : public AllocatorBase {
 public:
  explicit PagedKVAllocator(SimDevice* device, PagedKVConfig config = PagedKVConfig{});
  ~PagedKVAllocator() override;

  std::string_view name() const override { return "paged-kv"; }
  uint64_t ReservedBytes() const override { return reserved_; }
  // Releases fully-free slabs back to the device.
  void EmptyCache() override;
  void AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const override;

  // Introspection for tests.
  size_t num_slabs() const { return slabs_.size(); }
  size_t free_blocks() const { return free_blocks_.size(); }
  uint64_t block_bytes() const { return config_.block_bytes; }

 protected:
  std::optional<uint64_t> DoMalloc(uint64_t size, const RequestContext& ctx) override;
  void DoFree(uint64_t addr, uint64_t size) override;

 private:
  struct Slab {
    uint64_t blocks = 0;
    uint64_t free = 0;  // free blocks currently inside this slab
  };

  // Grows the pool by one slab (shrinking the slab under device pressure); false when even a
  // single block cannot be allocated.
  bool GrowPool();
  // Device bytes one slab of `blocks` consumes (DevMalloc rounds to kMallocAlign).
  uint64_t SlabBytes(uint64_t blocks) const {
    return AlignUp(blocks * config_.block_bytes, SimDevice::kMallocAlign);
  }

  SimDevice* device_;
  PagedKVConfig config_;
  std::map<uint64_t, Slab> slabs_;          // slab base -> slab
  std::set<uint64_t> free_blocks_;          // free block base addresses (lowest-first reuse)
  std::map<uint64_t, uint64_t> block_slab_;   // block addr -> owning slab base
  std::map<uint64_t, uint64_t> passthrough_;  // direct cudaMalloc allocations: addr -> size
  uint64_t reserved_ = 0;
};

}  // namespace stalloc

#endif  // SRC_ALLOCATORS_PAGED_KV_H_
