#include "src/allocators/caching_allocator.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>

#include "src/common/check.h"

namespace stalloc {

CachingAllocator::CachingAllocator(SimDevice* device, CachingAllocatorConfig config)
    : device_(device), config_(config) {
  STALLOC_CHECK(IsPowerOfTwo(config_.min_block_size));
}

CachingAllocator::~CachingAllocator() {
  // Return every segment to the device so a shared SimDevice's accounting stays clean.
  for (auto& seg : segments_) {
    if (!seg.released) {
      device_->DevFree(seg.base);
    }
  }
}

uint64_t CachingAllocator::RoundSize(uint64_t size) const {
  if (size < config_.min_block_size) {
    return config_.min_block_size;
  }
  return AlignUp(size, config_.min_block_size);
}

uint64_t CachingAllocator::SegmentSizeFor(uint64_t rounded) const {
  if (IsSmall(rounded)) {
    return config_.small_buffer;
  }
  if (rounded < config_.min_large_alloc) {
    return config_.large_buffer;
  }
  return AlignUp(rounded, config_.round_large);
}

std::optional<uint64_t> CachingAllocator::AllocFromCache(uint64_t rounded, bool small,
                                                         StreamId stream) {
  auto& free_list = FreeListFor(small, stream);
  auto it = free_list.lower_bound(FreeKey{rounded, 0});
  if (it == free_list.end()) {
    return std::nullopt;
  }
  const uint64_t addr = it->second;
  free_list.erase(it);
  auto bit = blocks_.find(addr);
  STALLOC_CHECK(bit != blocks_.end() && bit->second.free);
  bit->second.free = false;
  segments_[bit->second.segment].free_bytes -= bit->second.size;
  SplitBlock(bit, rounded);
  return addr;
}

void CachingAllocator::SplitBlock(std::map<uint64_t, Block>::iterator it, uint64_t want) {
  Block& block = it->second;
  STALLOC_CHECK_GE(block.size, want);
  const uint64_t remainder = block.size - want;
  const Segment& seg = segments_[block.segment];
  const bool small = seg.small;
  // PyTorch should_split: small pool splits any >= kMinBlockSize remainder, large pool only
  // splits when the remainder exceeds kSmallSize (1 MiB) to limit large-pool fragmentation.
  const bool split = small ? remainder >= config_.min_block_size : remainder > config_.small_size;
  if (!split) {
    return;
  }
  block.size = want;
  Block rest;
  rest.addr = block.addr + want;
  rest.size = remainder;
  rest.free = true;
  rest.segment = block.segment;
  blocks_.emplace(rest.addr, rest);
  segments_[rest.segment].free_bytes += remainder;
  FreeListFor(small, seg.stream).insert(FreeKey{remainder, rest.addr});
}

std::optional<uint64_t> CachingAllocator::AllocFromNewSegment(uint64_t rounded, bool small,
                                                              StreamId stream) {
  const uint64_t seg_size = SegmentSizeFor(rounded);
  auto base = device_->DevMalloc(seg_size);
  if (!base.has_value()) {
    // Device OOM: release cached fully-free segments, then retry once (PyTorch behaviour).
    if (ReleaseCachedSegments() == 0) {
      return std::nullopt;
    }
    base = device_->DevMalloc(seg_size);
    if (!base.has_value()) {
      return std::nullopt;
    }
  }
  Segment seg;
  seg.base = *base;
  seg.size = seg_size;
  seg.small = small;
  seg.stream = stream;
  segments_.push_back(seg);
  reserved_ += seg_size;
  const uint32_t seg_id = static_cast<uint32_t>(segments_.size() - 1);

  Block block;
  block.addr = *base;
  block.size = seg_size;
  block.free = false;
  block.segment = seg_id;
  auto [bit, inserted] = blocks_.emplace(block.addr, block);
  STALLOC_CHECK(inserted);
  SplitBlock(bit, rounded);
  return *base;
}

std::optional<uint64_t> CachingAllocator::DoMalloc(uint64_t size, const RequestContext& ctx) {
  const uint64_t rounded = RoundSize(size);
  const bool small = IsSmall(rounded);
  if (auto addr = AllocFromCache(rounded, small, ctx.stream); addr.has_value()) {
    return addr;
  }
  return AllocFromNewSegment(rounded, small, ctx.stream);
}

void CachingAllocator::DoFree(uint64_t addr, uint64_t size) {
  (void)size;
  auto it = blocks_.find(addr);
  STALLOC_CHECK(it != blocks_.end() && !it->second.free,
                << "caching allocator: free of unknown block " << addr);
  it->second.free = true;
  segments_[it->second.segment].free_bytes += it->second.size;
  Coalesce(it);
}

void CachingAllocator::Coalesce(std::map<uint64_t, Block>::iterator it) {
  const uint32_t seg_id = it->second.segment;
  const bool small = segments_[seg_id].small;
  auto& free_list = FreeListFor(small, segments_[seg_id].stream);

  // Merge with the next block if contiguous, same segment and free.
  auto next = std::next(it);
  if (next != blocks_.end() && next->second.free && next->second.segment == seg_id &&
      it->second.addr + it->second.size == next->second.addr) {
    free_list.erase(FreeKey{next->second.size, next->second.addr});
    it->second.size += next->second.size;
    blocks_.erase(next);
  }
  // Merge with the previous block.
  if (it != blocks_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.free && prev->second.segment == seg_id &&
        prev->second.addr + prev->second.size == it->second.addr) {
      free_list.erase(FreeKey{prev->second.size, prev->second.addr});
      prev->second.size += it->second.size;
      blocks_.erase(it);
      it = prev;
    }
  }
  free_list.insert(FreeKey{it->second.size, it->second.addr});
}

uint64_t CachingAllocator::ReleaseCachedSegments() {
  uint64_t released = 0;
  for (uint32_t seg_id = 0; seg_id < segments_.size(); ++seg_id) {
    Segment& seg = segments_[seg_id];
    if (seg.released || seg.free_bytes != seg.size) {
      continue;
    }
    // The segment is one fully-free block (coalescing guarantees it); drop it.
    auto it = blocks_.find(seg.base);
    STALLOC_CHECK(it != blocks_.end() && it->second.free && it->second.size == seg.size);
    FreeListFor(seg.small, seg.stream).erase(FreeKey{it->second.size, it->second.addr});
    blocks_.erase(it);
    device_->DevFree(seg.base);
    seg.released = true;
    seg.free_bytes = 0;
    reserved_ -= seg.size;
    released += seg.size;
  }
  return released;
}

void CachingAllocator::EmptyCache() { ReleaseCachedSegments(); }

uint64_t CachingAllocator::cached_free_bytes() const {
  uint64_t total = 0;
  for (const auto& seg : segments_) {
    if (!seg.released) {
      total += seg.free_bytes;
    }
  }
  return total;
}

}  // namespace stalloc
