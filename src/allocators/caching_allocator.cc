#include "src/allocators/caching_allocator.h"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "src/common/check.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"

namespace stalloc {

CachingAllocator::CachingAllocator(SimDevice* device, CachingAllocatorConfig config)
    : device_(device), config_(config) {
  STALLOC_CHECK(IsPowerOfTwo(config_.min_block_size));
}

CachingAllocator::~CachingAllocator() {
  // Return every segment to the device so a shared SimDevice's accounting stays clean.
  for (auto& seg : segments_) {
    if (!seg.released) {
      device_->DevFree(seg.base);
    }
  }
}

uint64_t CachingAllocator::RoundSize(uint64_t size) const {
  if (size < config_.min_block_size) {
    return config_.min_block_size;
  }
  return AlignUp(size, config_.min_block_size);
}

uint64_t CachingAllocator::SegmentSizeFor(uint64_t rounded) const {
  if (IsSmall(rounded)) {
    return config_.small_buffer;
  }
  if (rounded < config_.min_large_alloc) {
    return config_.large_buffer;
  }
  return AlignUp(rounded, config_.round_large);
}

uint32_t CachingAllocator::NewBlockSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  blocks_.emplace_back();
  return static_cast<uint32_t>(blocks_.size() - 1);
}

void CachingAllocator::ReleaseBlockSlot(uint32_t slot) { free_slots_.push_back(slot); }

uint32_t CachingAllocator::FindBlock(uint64_t addr) const {
  auto it = by_addr_.find(addr);
  return it == by_addr_.end() ? kNoBlock : it->second;
}

std::optional<uint64_t> CachingAllocator::AllocFromCache(uint64_t rounded, bool small,
                                                         StreamId stream) {
  auto best = FreeListFor(small, stream).PopBestFit(rounded);
  if (!best.has_value()) {
    return std::nullopt;
  }
  const uint64_t addr = best->second;
  const uint32_t slot = FindBlock(addr);
  STALLOC_CHECK(slot != kNoBlock && blocks_[slot].free);
  blocks_[slot].free = false;
  segments_[blocks_[slot].segment].free_bytes -= blocks_[slot].size;
  SplitBlock(slot, rounded);
  return addr;
}

void CachingAllocator::SplitBlock(uint32_t slot, uint64_t want) {
  Block& block = blocks_[slot];
  STALLOC_CHECK_GE(block.size, want);
  const uint64_t remainder = block.size - want;
  const Segment& seg = segments_[block.segment];
  const bool small = seg.small;
  // PyTorch should_split: small pool splits any >= kMinBlockSize remainder, large pool only
  // splits when the remainder exceeds kSmallSize (1 MiB) to limit large-pool fragmentation.
  const bool split = small ? remainder >= config_.min_block_size : remainder > config_.small_size;
  if (!split) {
    return;
  }
  const uint32_t rest_slot = NewBlockSlot();
  Block& b = blocks_[slot];  // re-fetch: NewBlockSlot may reallocate the pool
  b.size = want;
  Block& rest = blocks_[rest_slot];
  rest.addr = b.addr + want;
  rest.size = remainder;
  rest.free = true;
  rest.segment = b.segment;
  // Link the remainder right after the block in the segment's address-ordered list.
  rest.prev = slot;
  rest.next = b.next;
  if (b.next != kNoBlock) {
    blocks_[b.next].prev = rest_slot;
  }
  b.next = rest_slot;
  by_addr_.emplace(rest.addr, rest_slot);
  segments_[rest.segment].free_bytes += remainder;
  FreeListFor(small, seg.stream).Insert(remainder, rest.addr);
}

std::optional<uint64_t> CachingAllocator::AllocFromNewSegment(uint64_t rounded, bool small,
                                                              StreamId stream) {
  const uint64_t seg_size = SegmentSizeFor(rounded);
  auto base = device_->DevMalloc(seg_size);
  if (!base.has_value()) {
    // Device OOM: release cached fully-free segments, then retry once (PyTorch behaviour).
    if (ReleaseCachedSegments() == 0) {
      return std::nullopt;
    }
    base = device_->DevMalloc(seg_size);
    if (!base.has_value()) {
      return std::nullopt;
    }
  }
  Segment seg;
  seg.base = *base;
  seg.size = seg_size;
  seg.small = small;
  seg.stream = stream;
  segments_.push_back(seg);
  reserved_ += seg_size;
  const uint32_t seg_id = static_cast<uint32_t>(segments_.size() - 1);

  const uint32_t slot = NewBlockSlot();
  Block& block = blocks_[slot];
  block.addr = *base;
  block.size = seg_size;
  block.free = false;
  block.segment = seg_id;
  block.prev = kNoBlock;
  block.next = kNoBlock;
  const bool inserted = by_addr_.emplace(block.addr, slot).second;
  STALLOC_CHECK(inserted);
  SplitBlock(slot, rounded);
  return *base;
}

std::optional<uint64_t> CachingAllocator::DoMalloc(uint64_t size, const RequestContext& ctx) {
  const uint64_t rounded = RoundSize(size);
  const bool small = IsSmall(rounded);
  if (auto addr = AllocFromCache(rounded, small, ctx.stream); addr.has_value()) {
    return addr;
  }
  return AllocFromNewSegment(rounded, small, ctx.stream);
}

void CachingAllocator::DoFree(uint64_t addr, uint64_t size) {
  (void)size;
  const uint32_t slot = FindBlock(addr);
  STALLOC_CHECK(slot != kNoBlock && !blocks_[slot].free,
                << "caching allocator: free of unknown block " << addr);
  blocks_[slot].free = true;
  segments_[blocks_[slot].segment].free_bytes += blocks_[slot].size;
  Coalesce(slot);
}

void CachingAllocator::Coalesce(uint32_t slot) {
  Block& block = blocks_[slot];
  const uint32_t seg_id = block.segment;
  auto& free_list = FreeListFor(segments_[seg_id].small, segments_[seg_id].stream);

  // Merge with the next block if free (list neighbours are contiguous within the segment).
  const uint32_t next = block.next;
  if (next != kNoBlock && blocks_[next].free) {
    STALLOC_DCHECK_EQ(block.addr + block.size, blocks_[next].addr);
    free_list.Erase(blocks_[next].size, blocks_[next].addr);
    by_addr_.erase(blocks_[next].addr);
    block.size += blocks_[next].size;
    block.next = blocks_[next].next;
    if (block.next != kNoBlock) {
      blocks_[block.next].prev = slot;
    }
    ReleaseBlockSlot(next);
  }
  // Merge with the previous block.
  uint32_t merged = slot;
  const uint32_t prev = block.prev;
  if (prev != kNoBlock && blocks_[prev].free) {
    STALLOC_DCHECK_EQ(blocks_[prev].addr + blocks_[prev].size, block.addr);
    free_list.Erase(blocks_[prev].size, blocks_[prev].addr);
    by_addr_.erase(block.addr);
    blocks_[prev].size += block.size;
    blocks_[prev].next = block.next;
    if (block.next != kNoBlock) {
      blocks_[block.next].prev = prev;
    }
    ReleaseBlockSlot(slot);
    merged = prev;
  }
  free_list.Insert(blocks_[merged].size, blocks_[merged].addr);
}

uint64_t CachingAllocator::ReleaseCachedSegments() {
  uint64_t released = 0;
  for (uint32_t seg_id = 0; seg_id < segments_.size(); ++seg_id) {
    Segment& seg = segments_[seg_id];
    if (seg.released || seg.free_bytes != seg.size) {
      continue;
    }
    // The segment is one fully-free block (coalescing guarantees it); drop it.
    const uint32_t slot = FindBlock(seg.base);
    STALLOC_CHECK(slot != kNoBlock && blocks_[slot].free && blocks_[slot].size == seg.size);
    STALLOC_CHECK(blocks_[slot].prev == kNoBlock && blocks_[slot].next == kNoBlock);
    FreeListFor(seg.small, seg.stream).Erase(blocks_[slot].size, blocks_[slot].addr);
    by_addr_.erase(seg.base);
    ReleaseBlockSlot(slot);
    device_->DevFree(seg.base);
    seg.released = true;
    seg.free_bytes = 0;
    reserved_ -= seg.size;
    released += seg.size;
  }
  return released;
}

void CachingAllocator::EmptyCache() {
  const uint64_t released = ReleaseCachedSegments();
  if (telemetry::Enabled()) {
    static telemetry::Counter* empties =
        telemetry::MetricsRegistry::Global().GetCounter("alloc.empty_cache_calls");
    empties->Add();
    static telemetry::Counter* bytes =
        telemetry::MetricsRegistry::Global().GetCounter("alloc.empty_cache_bytes");
    bytes->Add(released);
    auto& tracer = telemetry::Tracer::Global();
    Json args = Json::Object();
    args.Set("released", released);
    tracer.ThreadTrack()->Instant("empty_cache", telemetry::kCatAlloc, tracer.NowUs(),
                                  std::move(args));
  }
}

uint64_t CachingAllocator::cached_free_bytes() const {
  uint64_t total = 0;
  for (const auto& seg : segments_) {
    if (!seg.released) {
      total += seg.free_bytes;
    }
  }
  return total;
}

void CachingAllocator::AppendHeapSegments(std::vector<telemetry::HeapSegment>* out) const {
  for (const auto& seg : segments_) {
    if (seg.released) {
      continue;
    }
    telemetry::HeapSegment s;
    s.base = seg.base;
    s.size = seg.size;
    s.stream = seg.stream;
    s.pool = seg.small ? "small" : "large";
    out->push_back(std::move(s));
  }
}

}  // namespace stalloc
