// Coverage for src/allocators/free_index.h and the allocators that moved onto it.
//
// The BestFitIndex replaced the flat ordered (size, addr) sets the caching-style allocators
// searched linearly through node-based trees; its contract is that every selection is
// bit-identical to what lower_bound on the flat set would have picked. Two layers of evidence:
//   * a reference model — the seed's std::set<(size, addr)> — driven with the same adversarial
//     insert/erase/pop interleavings, asserting identical decisions op by op;
//   * pinned placement: Ma/Mr of the refactored caching/expandable/GMLake allocators over a
//     recorded storm trace and a training trace must equal values recorded from the pre-refactor
//     (seed) allocators.

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/allocators/caching_allocator.h"
#include "src/allocators/expandable_segments.h"
#include "src/allocators/free_index.h"
#include "src/allocators/gmlake.h"
#include "src/common/units.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/trace/synthetic.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

// The seed's free-list representation: one flat ordered set of (size, addr), best fit via
// lower_bound. The index under test must reproduce its decisions exactly.
class FlatReference {
 public:
  void Insert(uint64_t size, uint64_t addr) { set_.emplace(size, addr); }
  void Erase(uint64_t size, uint64_t addr) {
    ASSERT_EQ(set_.erase({size, addr}), 1u) << "reference erase of unknown block";
  }
  std::optional<std::pair<uint64_t, uint64_t>> PopBestFit(uint64_t min_size) {
    auto it = set_.lower_bound({min_size, 0});
    if (it == set_.end()) {
      return std::nullopt;
    }
    auto best = *it;
    set_.erase(it);
    return best;
  }
  std::optional<std::pair<uint64_t, uint64_t>> BestFit(uint64_t min_size) const {
    auto it = set_.lower_bound({min_size, 0});
    return it == set_.end() ? std::nullopt : std::optional<std::pair<uint64_t, uint64_t>>(*it);
  }
  size_t size() const { return set_.size(); }
  uint64_t largest_size() const { return set_.empty() ? 0 : set_.rbegin()->first; }

 private:
  std::set<std::pair<uint64_t, uint64_t>> set_;
};

TEST(BestFitIndex, EmptyIndexFindsNothing) {
  BestFitIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.largest_size(), 0u);
  EXPECT_FALSE(index.BestFit(1).has_value());
  EXPECT_FALSE(index.PopBestFit(1).has_value());
}

TEST(BestFitIndex, PopPicksSmallestSufficientSizeThenLowestAddress) {
  BestFitIndex index;
  index.Insert(4096, 300);
  index.Insert(4096, 100);
  index.Insert(4096, 200);
  index.Insert(8192, 50);
  // Smallest size >= 4096 is the 4096 bucket; lowest address wins within it.
  auto best = index.PopBestFit(4000);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, (std::pair<uint64_t, uint64_t>{4096, 100}));
  // A request above 4096 skips the bucket entirely.
  best = index.PopBestFit(5000);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, (std::pair<uint64_t, uint64_t>{8192, 50}));
  // Nothing fits above the largest size.
  EXPECT_FALSE(index.PopBestFit(10000).has_value());
  EXPECT_EQ(index.size(), 2u);
}

TEST(BestFitIndex, KeptAliveEmptyBucketsAreSkipped) {
  BestFitIndex index;
  index.Insert(512, 10);
  index.Insert(1024, 20);
  ASSERT_TRUE(index.PopBestFit(512).has_value());  // empties the 512 bucket, keeps it alive
  EXPECT_EQ(index.num_size_buckets(), 2u);
  auto best = index.PopBestFit(1);  // must walk past the empty 512 bucket
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->first, 1024u);
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.largest_size(), 0u);
  // The bucket revives on the next insert of that size without growing the size array.
  index.Insert(512, 11);
  EXPECT_EQ(index.num_size_buckets(), 2u);
  EXPECT_EQ(index.largest_size(), 512u);
}

TEST(BestFitIndex, EraseRemovesSpecificBlocks) {
  BestFitIndex index;
  index.Insert(4096, 100);
  index.Insert(4096, 200);
  index.Insert(4096, 300);
  index.Erase(4096, 200);  // a middle neighbour being coalesced away
  auto best = index.PopBestFit(1);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->second, 100u);
  best = index.PopBestFit(1);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->second, 300u);
  EXPECT_TRUE(index.empty());
}

// A deep single-size bucket freed in adversarial (descending, then shuffled) order: the seed's
// tree walked O(log n) nodes per op here, and a naive bucket insert would shift O(n). Every pop
// must still be the lowest live address.
TEST(BestFitIndex, DeepSameSizeBucketPopsInAddressOrder) {
  BestFitIndex index;
  FlatReference ref;
  uint64_t rng = 7;
  auto rnd = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::vector<uint64_t> addrs;
  for (uint64_t i = 0; i < 2000; ++i) {
    addrs.push_back((i + 1) * 4096);
  }
  for (size_t i = addrs.size(); i > 1; --i) {  // Fisher-Yates with the deterministic rng
    std::swap(addrs[i - 1], addrs[rnd() % i]);
  }
  for (uint64_t a : addrs) {
    index.Insert(1 * MiB, a);
    ref.Insert(1 * MiB, a);
  }
  for (size_t i = 0; i < addrs.size(); ++i) {
    auto got = index.PopBestFit(1 * MiB);
    auto want = ref.PopBestFit(1 * MiB);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, *want) << "pop " << i;
  }
  EXPECT_TRUE(index.empty());
}

// Randomized adversarial interleavings of insert / erase / pop / peek against the reference
// flat set: every decision must match, op by op. The palette mirrors the caching allocator's
// rounded request sizes (a few dozen recurring values, deep buckets).
TEST(BestFitIndex, FuzzMatchesFlatSetReference) {
  BestFitIndex index;
  FlatReference ref;
  uint64_t rng = 12345;
  auto rnd = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::vector<uint64_t> palette;
  for (uint64_t k = 1; k <= 16; ++k) {
    palette.push_back(k * 512);
  }
  for (uint64_t k = 1; k <= 16; ++k) {
    palette.push_back(k * 2 * MiB);
  }
  std::vector<std::pair<uint64_t, uint64_t>> live;
  uint64_t next_addr = 1;
  for (int op = 0; op < 50000; ++op) {
    const uint64_t dice = rnd() % 100;
    if (dice < 45 || live.empty()) {
      const uint64_t size = palette[rnd() % palette.size()];
      const uint64_t addr = (next_addr++) * 512;
      index.Insert(size, addr);
      ref.Insert(size, addr);
      live.emplace_back(size, addr);
    } else if (dice < 60) {
      // Erase a random live block (the coalesce path removes arbitrary members).
      const size_t pick = rnd() % live.size();
      const auto [size, addr] = live[pick];
      live[pick] = live.back();
      live.pop_back();
      index.Erase(size, addr);
      ref.Erase(size, addr);
    } else if (dice < 90) {
      // Pop best fit for a request that may fall between buckets.
      const uint64_t want = palette[rnd() % palette.size()] - (rnd() % 512);
      auto got = index.PopBestFit(want);
      auto expect = ref.PopBestFit(want);
      ASSERT_EQ(got, expect) << "op " << op << " want " << want;
      if (got.has_value()) {
        for (size_t i = 0; i < live.size(); ++i) {
          if (live[i] == *got) {
            live[i] = live.back();
            live.pop_back();
            break;
          }
        }
      }
    } else {
      const uint64_t want = 1 + rnd() % (64 * MiB);
      ASSERT_EQ(index.BestFit(want), ref.BestFit(want)) << "op " << op;
    }
    ASSERT_EQ(index.size(), ref.size());
    ASSERT_EQ(index.largest_size(), ref.largest_size());
  }
}

// --- pinned placement: the refactored allocators vs. the seed allocators ---

struct GoldenRun {
  uint64_t allocated_peak = 0;  // Ma — trace property, sanity-checks the replay
  uint64_t reserved_peak = 0;   // Mr — the placement-policy pin
};

void ExpectPinnedPlacement(const Trace& trace, Allocator* alloc, const GoldenRun& golden) {
  ReplayResult r = ReplayTrace(trace, alloc);
  ASSERT_FALSE(r.oom);
  EXPECT_EQ(alloc->stats().allocated_peak, golden.allocated_peak);
  EXPECT_EQ(alloc->stats().reserved_peak, golden.reserved_peak);
  EXPECT_EQ(alloc->ReservedBytes(), golden.reserved_peak);  // nothing released mid-run
}

// Golden Ma/Mr recorded from the pre-refactor (flat std::set / std::map) allocators at commit
// fd08432 on these exact traces. The indexed free lists must not move a single placement.
TEST(PinnedPlacement, StormTraceMatchesSeedAllocators) {
  const Trace storm = BuildStormTrace(10000, 42);
  {
    SimDevice dev(64ull * GiB);
    CachingAllocator alloc(&dev);
    ExpectPinnedPlacement(storm, &alloc, {11976507392ull, 12509511680ull});
  }
  {
    SimDevice dev(64ull * GiB);
    ExpandableSegmentsAllocator alloc(&dev);
    ExpectPinnedPlacement(storm, &alloc, {11976507392ull, 12427722752ull});
  }
  {
    SimDevice dev(64ull * GiB);
    GMLakeAllocator alloc(&dev);
    ExpectPinnedPlacement(storm, &alloc, {11976507392ull, 12509511680ull});
  }
}

TEST(PinnedPlacement, TrainingTraceMatchesSeedAllocators) {
  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 4;
  config.micro_batch_size = 4;
  WorkloadBuilder wb(Gpt2_345M(), config);
  const Trace train = wb.Build(2);
  {
    SimDevice dev(64ull * GiB);
    CachingAllocator alloc(&dev);
    ExpectPinnedPlacement(train, &alloc, {7108921600ull, 7992246272ull});
  }
  {
    SimDevice dev(64ull * GiB);
    ExpandableSegmentsAllocator alloc(&dev);
    ExpectPinnedPlacement(train, &alloc, {7108921600ull, 7117733888ull});
  }
  {
    SimDevice dev(64ull * GiB);
    GMLakeAllocator alloc(&dev);
    ExpectPinnedPlacement(train, &alloc, {7108921600ull, 7992246272ull});
  }
}

// Placement must also be run-to-run deterministic: two fresh replays of the same storm hand out
// byte-identical address sequences.
TEST(PinnedPlacement, StormReplayIsDeterministic) {
  const Trace storm = BuildStormTrace(5000, 9);
  class AddrRecorder : public ReplayObserver {
   public:
    void AfterMalloc(ReplayEngine&, const ReplayOpView&, uint64_t addr) override {
      addrs.push_back(addr);
    }
    std::vector<uint64_t> addrs;
  };
  AddrRecorder first, second;
  {
    SimDevice dev(64ull * GiB);
    CachingAllocator alloc(&dev);
    ASSERT_FALSE(ReplayTrace(storm, &alloc, &first).oom);
  }
  {
    SimDevice dev(64ull * GiB);
    CachingAllocator alloc(&dev);
    ASSERT_FALSE(ReplayTrace(storm, &alloc, &second).oom);
  }
  ASSERT_EQ(first.addrs.size(), second.addrs.size());
  EXPECT_EQ(first.addrs, second.addrs);
}

}  // namespace
}  // namespace stalloc
