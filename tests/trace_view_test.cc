// Replay-parity contract of the mmap'd columnar trace path: replaying a TraceView must produce
// placement decisions bit-identical to replaying the materialized owned Trace, for every
// registered allocator kind — the guarantee that lets stalloc_run / the benches stream
// million-op traces from disk without materializing them.
//
// Also pins a golden placement digest on a seeded synthetic storm: any change to the replay
// engine, the synthetic generator, or the caching allocator's decisions shows up here as a
// digest change and must be deliberate.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/allocators/registry.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"
#include "src/core/stalloc_allocator.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/replay/replay_engine.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace.h"
#include "src/trace/trace_v2.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

constexpr uint64_t kCapacity = 64ull * GiB;

uint64_t DigestOwned(const Trace& trace, Allocator* alloc) {
  PlacementDigestObserver obs;
  ReplayTrace(trace, alloc, &obs);
  return obs.digest();
}

uint64_t DigestView(const TraceView& view, Allocator* alloc) {
  PlacementDigestObserver obs;
  ReplayTrace(view, alloc, &obs);
  return obs.digest();
}

// A phased training trace (so the plan-pipeline kinds participate), small enough to keep the
// 7-kind sweep fast.
Trace TrainTrace() {
  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 4;
  config.micro_batch_size = 2;
  return WorkloadBuilder(ModelByName("gpt2"), config).Build(3);
}

TEST(TraceViewReplayTest, ViewDecisionsMatchOwnedForEveryAllocatorKind) {
  const Trace trace = TrainTrace();
  const std::string path = ::testing::TempDir() + "/trace_view_parity.stlc";
  ASSERT_TRUE(WriteTraceV2File(trace, path));
  TraceView view;
  TraceIoError err;
  ASSERT_TRUE(view.Open(path, &err)) << err.message;
  ASSERT_EQ(view.num_events(), trace.size());

  for (const std::string& name : AllocatorRegistry::Global().Names()) {
    const AllocatorRegistry::Entry& entry = *AllocatorRegistry::Global().Find(name);
    uint64_t owned_digest = 0;
    uint64_t view_digest = 0;
    if (entry.requires_plan) {
      // One plan from the materialized trace; fresh pools per replay mode.
      ProfileResult profile = ProfileTrace(trace, kCapacity);
      ASSERT_TRUE(profile.feasible) << name;
      SynthesisResult synthesis = SynthesizePlan(profile.trace);
      STAllocConfig config;
      config.enable_dynamic_reuse = entry.kind == AllocatorKind::kSTAlloc;
      SimDevice owned_device(kCapacity);
      STAllocAllocator owned_alloc(&owned_device, synthesis.plan, synthesis.dyn_space, config);
      ASSERT_TRUE(owned_alloc.Init()) << name;
      owned_digest = DigestOwned(trace, &owned_alloc);
      SimDevice view_device(kCapacity);
      STAllocAllocator view_alloc(&view_device, synthesis.plan, synthesis.dyn_space, config);
      ASSERT_TRUE(view_alloc.Init()) << name;
      view_digest = DigestView(view, &view_alloc);
    } else {
      SimDevice owned_device(kCapacity);
      std::unique_ptr<Allocator> owned_alloc =
          AllocatorRegistry::Global().Create(name, &owned_device);
      owned_digest = DigestOwned(trace, owned_alloc.get());
      SimDevice view_device(kCapacity);
      std::unique_ptr<Allocator> view_alloc =
          AllocatorRegistry::Global().Create(name, &view_device);
      view_digest = DigestView(view, view_alloc.get());
    }
    EXPECT_NE(owned_digest, 0u) << name;  // the trace is non-trivial; something must be mixed in
    EXPECT_EQ(owned_digest, view_digest) << "owned/view placement divergence under " << name;
  }
  view.Close();
  std::remove(path.c_str());
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The two generator paths — materialize in memory then bulk-write, vs stream events straight
// to disk — must produce byte-identical v2 files for every mix. This is what lets tests and
// docs treat "the 1M-op storm at seed 42" as one artifact regardless of how it was produced.
TEST(TraceViewReplayTest, StreamedGeneratorMatchesMaterializedBytes) {
  for (SyntheticMix mix : {SyntheticMix::kStorm, SyntheticMix::kTraining, SyntheticMix::kServing}) {
    SyntheticSpec spec;
    spec.mix = mix;
    spec.num_ops = 10000;
    spec.seed = 11;
    const std::string streamed = ::testing::TempDir() + "/trace_view_gen_stream.stlc";
    const std::string bulk = ::testing::TempDir() + "/trace_view_gen_bulk.stlc";
    ASSERT_TRUE(GenerateSyntheticV2File(spec, streamed)) << SyntheticMixName(mix);
    ASSERT_TRUE(WriteTraceV2File(BuildSyntheticTrace(spec), bulk)) << SyntheticMixName(mix);
    EXPECT_EQ(FileBytes(streamed), FileBytes(bulk))
        << "generator paths diverged for mix " << SyntheticMixName(mix);
    std::remove(streamed.c_str());
    std::remove(bulk.c_str());
  }
}

// Every synthetic mix, through both the in-memory builder and the streamed v2 writer: the two
// generator paths must describe the same logical trace, and both replay paths must agree on it.
TEST(TraceViewReplayTest, SyntheticMixesReplayIdenticallyFromView) {
  for (SyntheticMix mix : {SyntheticMix::kStorm, SyntheticMix::kTraining, SyntheticMix::kServing}) {
    SyntheticSpec spec;
    spec.mix = mix;
    spec.num_ops = 20000;
    spec.seed = 7;
    const std::string path = ::testing::TempDir() + "/trace_view_mix_" +
                             std::string(SyntheticMixName(mix)) + ".stlc";
    ASSERT_TRUE(GenerateSyntheticV2File(spec, path)) << SyntheticMixName(mix);
    TraceView view;
    TraceIoError err;
    ASSERT_TRUE(view.Open(path, &err)) << SyntheticMixName(mix) << ": " << err.message;
    const Trace trace = BuildSyntheticTrace(spec);
    ASSERT_EQ(view.num_events(), trace.size()) << SyntheticMixName(mix);

    SimDevice owned_device(kCapacity);
    std::unique_ptr<Allocator> owned_alloc =
        AllocatorRegistry::Global().Create("torch-caching", &owned_device);
    const uint64_t owned_digest = DigestOwned(trace, owned_alloc.get());
    SimDevice view_device(kCapacity);
    std::unique_ptr<Allocator> view_alloc =
        AllocatorRegistry::Global().Create("torch-caching", &view_device);
    const uint64_t view_digest = DigestView(view, view_alloc.get());
    EXPECT_EQ(owned_digest, view_digest) << SyntheticMixName(mix);
    view.Close();
    std::remove(path.c_str());
  }
}

// Golden digest, pinned: the 100k-op storm at seed 42 through torch-caching. The generator, the
// v2 format, the replay engine, and the caching allocator are all deterministic — if this value
// moves, a behavioral change slipped into one of them. Recompute deliberately (see comment) and
// update the constant only when the change is intended.
TEST(TraceViewReplayTest, PinnedStormPlacementDigest) {
  SyntheticSpec spec;
  spec.mix = SyntheticMix::kStorm;
  spec.num_ops = 100000;
  spec.seed = 42;
  const Trace trace = BuildSyntheticTrace(spec);
  SimDevice device(kCapacity);
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  const uint64_t digest = DigestOwned(trace, alloc.get());
  // Recompute: stalloc_trace_gen --ops 100000 --mix storm --seed 42, replay through
  // torch-caching at 64 GiB with PlacementDigestObserver (or just run this test and read the
  // failure message).
  EXPECT_EQ(digest, 0x65ab12902ef7398dull) << "pinned storm digest moved";
}

}  // namespace
}  // namespace stalloc
