#include "src/allocators/gmlake.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace stalloc {
namespace {

TEST(GMLake, LargeBlocksAreVmmBacked) {
  SimDevice dev(8 * GiB);
  GMLakeAllocator alloc(&dev);
  auto a = alloc.Malloc(64 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_GT(dev.counters().mem_create, 0u);
  EXPECT_GT(dev.counters().va_reserve, 0u);
  EXPECT_EQ(dev.counters().cuda_malloc, 0u);  // no classic API for large blocks
  alloc.Free(*a);
}

TEST(GMLake, ReusesCachedBlocks) {
  SimDevice dev(8 * GiB);
  GMLakeAllocator alloc(&dev);
  auto a = alloc.Malloc(64 * MiB);
  alloc.Free(*a);
  auto b = alloc.Malloc(64 * MiB);
  EXPECT_EQ(*a, *b);
  alloc.Free(*b);
}

TEST(GMLake, StitchesFreeBlocksForHugeRequest) {
  // Device with room for ~1 GiB. Create four 256 MiB blocks, free them, then ask for 900 MiB:
  // no single free block fits and physical memory is exhausted, so GMLake must stitch the free
  // blocks' physical handles into one contiguous virtual range.
  SimDevice dev(1088 * MiB);
  GMLakeConfig config;
  config.frag_limit = 256 * MiB;
  GMLakeAllocator alloc(&dev, config);
  std::vector<uint64_t> blocks;
  for (int i = 0; i < 4; ++i) {
    auto a = alloc.Malloc(256 * MiB);
    ASSERT_TRUE(a.has_value());
    blocks.push_back(*a);
  }
  for (auto a : blocks) {
    alloc.Free(a);
  }
  auto big = alloc.Malloc(900 * MiB);
  ASSERT_TRUE(big.has_value());
  EXPECT_GE(alloc.num_stitches(), 1u);
  // Physical memory was not re-created: reserved stays ~1 GiB.
  EXPECT_LE(alloc.ReservedBytes(), 1088 * MiB);
  alloc.Free(*big);
}

TEST(GMLake, NoStitchBelowFragLimit) {
  SimDevice dev(1088 * MiB);
  GMLakeConfig config;
  config.frag_limit = 512 * MiB;  // paper default
  GMLakeAllocator alloc(&dev, config);
  std::vector<uint64_t> blocks;
  for (int i = 0; i < 4; ++i) {
    auto a = alloc.Malloc(256 * MiB);
    ASSERT_TRUE(a.has_value());
    blocks.push_back(*a);
  }
  for (auto a : blocks) {
    alloc.Free(a);
  }
  // 300 MiB < fragLimit: stitching not allowed, but releasing cached segments lets a fresh
  // physical allocation succeed.
  auto mid = alloc.Malloc(300 * MiB);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(alloc.num_stitches(), 0u);
  alloc.Free(*mid);
}

TEST(GMLake, LowFragLimitCausesVmmChurn) {
  // §9.2: tuning fragLimit down to 64 MiB raises memory efficiency but triggers frequent
  // virtual-memory operations under dynamic (MoE-style) allocation churn.
  SimDevice dev(512 * MiB);
  GMLakeConfig low;
  low.frag_limit = 64 * MiB;
  GMLakeAllocator alloc(&dev, low);
  Rng rng(5);
  std::vector<uint64_t> live;
  for (int step = 0; step < 300; ++step) {
    if (live.size() < 3 || rng.NextBelow(2) == 0) {
      const uint64_t size = (64 + rng.NextBelow(64)) * MiB;
      auto a = alloc.Malloc(size);
      if (a.has_value()) {
        live.push_back(*a);
      }
    } else {
      const size_t i = rng.NextBelow(live.size());
      alloc.Free(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
  }
  for (auto a : live) {
    alloc.Free(a);
  }
  EXPECT_GT(alloc.num_stitches(), 0u);
  EXPECT_GT(dev.counters().mem_unmap, 0u);
}

TEST(GMLake, SmallPoolDelegation) {
  SimDevice dev(8 * GiB);
  GMLakeAllocator alloc(&dev);
  auto a = alloc.Malloc(16 * KiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(dev.counters().cuda_malloc, 1u);  // classic small segment
  EXPECT_TRUE(alloc.Free(*a));
}

TEST(GMLake, EmptyCacheReleasesEverything) {
  SimDevice dev(8 * GiB);
  GMLakeAllocator alloc(&dev);
  auto a = alloc.Malloc(64 * MiB);
  auto b = alloc.Malloc(16 * KiB);
  alloc.Free(*a);
  alloc.Free(*b);
  alloc.EmptyCache();
  EXPECT_EQ(alloc.ReservedBytes(), 0u);
  EXPECT_EQ(dev.physical_used(), 0u);
}

class GMLakePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GMLakePropertyTest, RandomStormUnderPressure) {
  SimDevice dev(768 * MiB);
  GMLakeConfig config;
  config.frag_limit = 128 * MiB;
  GMLakeAllocator alloc(&dev, config);
  Rng rng(GetParam());
  std::vector<uint64_t> live;
  for (int step = 0; step < 800; ++step) {
    if (live.empty() || rng.NextBelow(100) < 50) {
      const uint64_t size = MiB * (1 + rng.NextBelow(200));
      auto a = alloc.Malloc(size);
      if (a.has_value()) {
        live.push_back(*a);
      }
    } else {
      const size_t i = rng.NextBelow(live.size());
      ASSERT_TRUE(alloc.Free(live[i]));
      live[i] = live.back();
      live.pop_back();
    }
  }
  for (auto a : live) {
    ASSERT_TRUE(alloc.Free(a));
  }
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
  alloc.EmptyCache();
  EXPECT_EQ(dev.physical_used(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GMLakePropertyTest, ::testing::Values(2, 29, 404));

}  // namespace
}  // namespace stalloc
