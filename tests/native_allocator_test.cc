#include "src/allocators/native_allocator.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace stalloc {
namespace {

TEST(NativeAllocator, PassesThroughToDevice) {
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  auto a = alloc.Malloc(10 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(dev.counters().cuda_malloc, 1u);
  EXPECT_EQ(alloc.ReservedBytes(), AlignUp(10 * MiB, SimDevice::kMallocAlign));
  EXPECT_TRUE(alloc.Free(*a));
  EXPECT_EQ(dev.counters().cuda_free, 1u);
  EXPECT_EQ(alloc.ReservedBytes(), 0u);
}

TEST(NativeAllocator, NoCachingBetweenRequests) {
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  auto a = alloc.Malloc(1 * MiB);
  alloc.Free(*a);
  auto b = alloc.Malloc(1 * MiB);
  alloc.Free(*b);
  // Every request hits the device: no cached reuse, hence zero fragmentation by construction.
  EXPECT_EQ(dev.counters().cuda_malloc, 2u);
  EXPECT_EQ(dev.counters().cuda_free, 2u);
  EXPECT_GE(alloc.stats().MemoryEfficiency(), 0.99);
}

TEST(NativeAllocator, OomSurfacesDirectly) {
  SimDevice dev(16 * MiB);
  NativeAllocator alloc(&dev);
  EXPECT_FALSE(alloc.Malloc(32 * MiB).has_value());
  EXPECT_EQ(alloc.stats().num_oom, 1u);
}

TEST(NativeAllocator, ZeroSizeRejected) {
  SimDevice dev(16 * MiB);
  NativeAllocator alloc(&dev);
  EXPECT_FALSE(alloc.Malloc(0).has_value());
}

}  // namespace
}  // namespace stalloc
