// Coverage for src/replay/replay_engine.*: the unified streaming replay core every driver
// (ReplayTrace, RunServeExperiment, the cluster Fleet) now routes through. Exercises global
// (time, source) op ordering, tenant-gang unwinding, the three shared OOM policies
// (abort / requeue / preempt-with-recompute), restart semantics and the observer surface.

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/allocators/caching_allocator.h"
#include "src/allocators/native_allocator.h"
#include "src/common/units.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/replay/replay_engine.h"
#include "src/trace/trace.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

// Builds a trace from (size, ts, te) triples.
Trace MakeTrace(const std::vector<std::tuple<uint64_t, LogicalTime, LogicalTime>>& events) {
  Trace trace;
  for (const auto& [size, ts, te] : events) {
    MemoryEvent e;
    e.size = size;
    e.ts = ts;
    e.te = te;
    trace.AddEvent(e);
  }
  return trace;
}

// Records every op the engine hands to observers, in order.
class OpRecorder : public ReplayObserver {
 public:
  struct Seen {
    size_t source;
    uint64_t time;
    TraceOp::Kind kind;
    uint64_t event_id;
  };
  void BeforeOp(ReplayEngine&, const ReplayOpView& op) override {
    seen.push_back({op.source, op.time, op.kind, op.event->id});
  }
  std::vector<Seen> seen;
};

TEST(ReplayEngine, SingleSourceReplaysOpsInTraceOrder) {
  const Trace trace = MakeTrace({{1 * MiB, 0, 4}, {2 * MiB, 1, 3}, {3 * MiB, 2, 6}});
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  OpRecorder recorder;
  ReplayEngine engine(&recorder);
  ReplaySource src;
  src.trace = &trace;
  src.alloc = &alloc;
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();

  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.num_mallocs, 3u);
  EXPECT_EQ(r.num_frees, 3u);
  EXPECT_EQ(r.ops_replayed, 6u);
  EXPECT_EQ(r.end_time, trace.end_time());  // the last free lands at the largest te
  EXPECT_TRUE(engine.progress(0).done);
  EXPECT_EQ(engine.active_sources(), 0u);
  EXPECT_EQ(alloc.stats().allocated_current, 0u);

  // The observed stream is exactly Trace::Ops() — times nondecreasing, frees before mallocs at
  // equal ticks.
  ASSERT_EQ(recorder.seen.size(), trace.Ops().size());
  for (size_t i = 0; i < recorder.seen.size(); ++i) {
    EXPECT_EQ(recorder.seen[i].time, trace.Ops()[i].time) << i;
    EXPECT_EQ(recorder.seen[i].event_id, trace.Ops()[i].event_id) << i;
    EXPECT_EQ(recorder.seen[i].kind == TraceOp::Kind::kMalloc,
              trace.Ops()[i].kind == TraceOp::Kind::kMalloc)
        << i;
  }
}

TEST(ReplayEngine, FreesApplyBeforeMallocsAtTheSameTick) {
  // 6 GiB handed over at tick 5 on an 8 GiB device: only possible if the free lands first.
  const Trace trace = MakeTrace({{6 * GiB, 0, 5}, {6 * GiB, 5, 10}});
  SimDevice dev(8 * GiB);
  NativeAllocator alloc(&dev);
  ReplayEngine engine;
  ReplaySource src;
  src.trace = &trace;
  src.alloc = &alloc;
  engine.AddSource(src);
  EXPECT_FALSE(engine.Run().oom);
}

TEST(ReplayEngine, MultiSourceOpsInterleaveInGlobalTimeOrder) {
  const Trace a = MakeTrace({{1 * MiB, 0, 8}, {1 * MiB, 4, 6}});
  const Trace b = MakeTrace({{1 * MiB, 1, 3}, {1 * MiB, 5, 7}});
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  OpRecorder recorder;
  ReplayEngine engine(&recorder);
  ReplaySource src;
  src.alloc = &alloc;
  src.trace = &a;
  src.tenant = 0;
  engine.AddSource(src);
  src.trace = &b;
  src.tenant = 1;
  src.start = 2;  // b's local ticks shift by +2: ops at 3, 5, 7, 9
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();

  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.ops_replayed, 8u);
  ASSERT_EQ(recorder.seen.size(), 8u);
  for (size_t i = 1; i < recorder.seen.size(); ++i) {
    const auto& prev = recorder.seen[i - 1];
    const auto& cur = recorder.seen[i];
    // Global (time, source) order: ties broken by source id.
    EXPECT_TRUE(prev.time < cur.time || (prev.time == cur.time && prev.source <= cur.source))
        << "op " << i;
  }
  // Both streams really interleave (source 1 appears between source-0 ops).
  EXPECT_EQ(recorder.seen[0].source, 0u);  // t=0
  EXPECT_EQ(recorder.seen[1].source, 1u);  // t=3
}

TEST(ReplayEngine, IterationsReplayBackToBack) {
  const Trace trace = MakeTrace({{1 * MiB, 0, 2}, {2 * MiB, 1, 3}});
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  ReplayEngine engine;
  ReplaySource src;
  src.trace = &trace;
  src.alloc = &alloc;
  src.iterations = 3;
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.num_mallocs, 6u);
  EXPECT_EQ(r.num_frees, 6u);
  EXPECT_EQ(engine.progress(0).ops_replayed, 12u);
  // Iterations are offset by the trace's end_time: the last free lands at 2*3 + 3.
  EXPECT_EQ(r.end_time, 2 * trace.end_time() + trace.end_time());
}

TEST(ReplayEngine, ZeroOpSourceIsImmediatelyDone) {
  const Trace empty;
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  ReplayEngine engine;
  ReplaySource src;
  src.trace = &empty;
  src.alloc = &alloc;
  const size_t id = engine.AddSource(src);
  EXPECT_TRUE(engine.progress(id).done);
  EXPECT_EQ(engine.active_sources(), 0u);
  EXPECT_FALSE(engine.HasPending());
}

TEST(ReplayEngine, DefaultPolicyAbortsRunOnFirstOomAndUnwinds) {
  const Trace trace = MakeTrace({{6 * GiB, 0, 10}, {6 * GiB, 1, 10}, {1 * MiB, 2, 10}});
  SimDevice dev(8 * GiB);
  NativeAllocator alloc(&dev);
  ReplayEngine engine;
  ReplaySource src;
  src.trace = &trace;
  src.alloc = &alloc;
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();
  EXPECT_TRUE(r.oom);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.first_failed_event, 1u);
  EXPECT_EQ(r.oom_events, 1u);
  EXPECT_EQ(r.ops_replayed, 1u);  // the successful first malloc; the failed op does not count
  EXPECT_TRUE(engine.progress(0).aborted);
  // The run's live blocks were released on exit.
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
}

TEST(ReplayEngine, SkipOpPolicyDropsTheOpAndItsFree) {
  class SkipAll : public ReplayObserver {
   public:
    OomAction OnOom(ReplayEngine&, const ReplayOpView&) override { return OomAction::kSkipOp; }
  };
  const Trace trace = MakeTrace({{6 * GiB, 0, 10}, {6 * GiB, 1, 5}, {1 * GiB, 2, 10}});
  SimDevice dev(8 * GiB);
  NativeAllocator alloc(&dev);
  SkipAll skip;
  ReplayEngine engine(&skip);
  ReplaySource src;
  src.trace = &trace;
  src.alloc = &alloc;
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();
  EXPECT_TRUE(r.oom);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.oom_events, 1u);
  EXPECT_EQ(r.num_mallocs, 3u);  // attempts, including the failed one
  EXPECT_EQ(r.num_frees, 2u);    // the dropped op's free is silently skipped
  EXPECT_EQ(r.ops_replayed, 6u); // the stream still drains completely
  EXPECT_TRUE(engine.progress(0).done);
}

TEST(ReplayEngine, RequeuePolicyParksTenantUntilMemoryFrees) {
  const Trace a = MakeTrace({{6 * GiB, 1, 10}});
  const Trace b = MakeTrace({{6 * GiB, 2, 12}});
  SimDevice dev(8 * GiB);
  NativeAllocator alloc(&dev);
  OomPolicyObserver policy(OomPolicy::kRequeue, /*max_retries=*/2);
  ReplayEngine engine(&policy);
  ReplaySource src;
  src.alloc = &alloc;
  src.trace = &a;
  src.tenant = 0;
  engine.AddSource(src);
  src.trace = &b;
  src.tenant = 1;
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();

  EXPECT_TRUE(r.oom);  // tenant 1's first attempt failed...
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(policy.requeues(), 1u);
  EXPECT_EQ(policy.rejected_tenants(), 0u);
  EXPECT_EQ(policy.oom_count(1), 1);
  // ...but it was re-admitted when tenant 0 completed, and both finished.
  EXPECT_TRUE(engine.progress(0).done);
  EXPECT_TRUE(engine.progress(1).done);
  EXPECT_EQ(engine.progress(1).restarts, 1);
  // The restart replays the whole stream at the tick the memory freed (t=10): its ops land at
  // 10+2 and 10+12.
  EXPECT_EQ(r.end_time, 22u);
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
}

TEST(ReplayEngine, RequeueWithNothingElseRunningRejects) {
  const Trace trace = MakeTrace({{6 * GiB, 0, 10}, {6 * GiB, 1, 10}});
  SimDevice dev(8 * GiB);
  NativeAllocator alloc(&dev);
  OomPolicyObserver policy(OomPolicy::kRequeue, /*max_retries=*/2);
  ReplayEngine engine(&policy);
  ReplaySource src;
  src.trace = &trace;
  src.alloc = &alloc;
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();
  EXPECT_TRUE(r.oom);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(policy.requeues(), 0u);
  EXPECT_EQ(policy.rejected_tenants(), 1u);  // retrying alone can never free memory
  EXPECT_TRUE(engine.progress(0).aborted);
  EXPECT_FALSE(engine.progress(0).done);
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
}

TEST(ReplayEngine, PreemptRecomputeRestartsAtTheCurrentTick) {
  // Tenant 1 collides with tenant 0 (live on [1,3)), is preempted, redoes its work from the
  // current tick and succeeds once tenant 0's memory is gone.
  const Trace a = MakeTrace({{6 * GiB, 1, 3}});
  const Trace b = MakeTrace({{6 * GiB, 2, 10}});
  SimDevice dev(8 * GiB);
  NativeAllocator alloc(&dev);
  OomPolicyObserver policy(OomPolicy::kPreemptRecompute, /*max_retries=*/2);
  ReplayEngine engine(&policy);
  ReplaySource src;
  src.alloc = &alloc;
  src.trace = &a;
  src.tenant = 0;
  engine.AddSource(src);
  src.trace = &b;
  src.tenant = 1;
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();

  EXPECT_TRUE(r.oom);
  EXPECT_EQ(policy.preemptions(), 1u);
  EXPECT_EQ(policy.rejected_tenants(), 0u);
  EXPECT_TRUE(engine.progress(0).done);
  EXPECT_TRUE(engine.progress(1).done);
  EXPECT_EQ(engine.progress(1).restarts, 1);
  // Restarted at now=2: tenant 1's ops land at 2+2 and 2+10.
  EXPECT_EQ(r.end_time, 12u);
}

TEST(ReplayEngine, RetryBudgetExhaustionRejectsTheTenant) {
  // Tenant 1 can never fit (10 GiB on an 8 GiB device): one preempt-recompute retry, then
  // rejection; tenant 0 is unaffected.
  const Trace a = MakeTrace({{2 * GiB, 0, 20}});
  const Trace b = MakeTrace({{10 * GiB, 1, 10}});
  SimDevice dev(8 * GiB);
  NativeAllocator alloc(&dev);
  OomPolicyObserver policy(OomPolicy::kPreemptRecompute, /*max_retries=*/1);
  ReplayEngine engine(&policy);
  ReplaySource src;
  src.alloc = &alloc;
  src.trace = &a;
  src.tenant = 0;
  engine.AddSource(src);
  src.trace = &b;
  src.tenant = 1;
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();

  EXPECT_TRUE(r.oom);
  EXPECT_EQ(r.oom_events, 2u);  // first attempt + one retry
  EXPECT_EQ(policy.preemptions(), 1u);
  EXPECT_EQ(policy.rejected_tenants(), 1u);
  EXPECT_EQ(policy.oom_count(1), 2);
  EXPECT_TRUE(engine.progress(0).done);
  EXPECT_TRUE(engine.progress(1).aborted);
  EXPECT_FALSE(engine.progress(1).done);
}

TEST(ReplayEngine, ParkedTenantRestartsWhenTheLastRunnerIsRejected) {
  // Tenant 1 parks while tenant 0 runs; tenant 0 then OOMs alone and is rejected. The parked
  // tenant must not strand — the rejection frees the device, so it restarts and completes.
  const Trace a = MakeTrace({{4 * GiB, 1, 6}, {7 * GiB, 5, 10}});  // self-OOMs at t=5
  const Trace b = MakeTrace({{6 * GiB, 2, 30}});
  SimDevice dev(8 * GiB);
  NativeAllocator alloc(&dev);
  OomPolicyObserver policy(OomPolicy::kRequeue, /*max_retries=*/1);
  ReplayEngine engine(&policy);
  ReplaySource src;
  src.alloc = &alloc;
  src.trace = &a;
  src.tenant = 0;
  engine.AddSource(src);
  src.trace = &b;
  src.tenant = 1;
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();

  EXPECT_TRUE(r.oom);
  EXPECT_EQ(policy.requeues(), 1u);          // tenant 1 parked at t=2
  EXPECT_EQ(policy.rejected_tenants(), 1u);  // tenant 0 rejected at t=5, nothing else running
  EXPECT_TRUE(engine.progress(0).aborted);
  EXPECT_FALSE(engine.progress(0).done);
  EXPECT_TRUE(engine.progress(1).done);  // restarted over the freed space
  EXPECT_EQ(engine.progress(1).restarts, 1);
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
}

TEST(ReplayEngine, TimelineObserverDropsUnwoundBytes) {
  // Unwinds free live blocks without AfterFree callbacks; the timeline must subtract them via
  // OnSourceAborted or the curve stays inflated forever after an abort.
  class AbortTenantTimeline : public TimelineObserver {
   public:
    using TimelineObserver::TimelineObserver;
    OomAction OnOom(ReplayEngine&, const ReplayOpView&) override {
      return OomAction::kAbortTenant;
    }
  };
  const Trace a = MakeTrace({{4 * GiB, 1, 10}});
  const Trace b = MakeTrace({{2 * GiB, 2, 8}, {6 * GiB, 3, 8}});  // OOMs at t=3 with 2 GiB live
  SimDevice dev(8 * GiB);
  NativeAllocator alloc(&dev);
  AbortTenantTimeline timeline(/*sample_every=*/1);
  ReplayEngine engine(&timeline);
  ReplaySource src;
  src.alloc = &alloc;
  src.trace = &a;
  src.tenant = 0;
  engine.AddSource(src);
  src.trace = &b;
  src.tenant = 1;
  engine.AddSource(src);
  const ReplayEngineResult& r = engine.Run();

  EXPECT_TRUE(r.oom);
  EXPECT_TRUE(engine.progress(0).done);
  EXPECT_TRUE(engine.progress(1).aborted);
  ASSERT_FALSE(timeline.samples().empty());
  // Tenant 0's free at t=10 is the last event: the curve must return to exactly zero, which
  // only happens if tenant 1's unwound 2 GiB were dropped when it aborted.
  EXPECT_EQ(timeline.samples().back().live_bytes, 0u);
  uint64_t peak = 0;
  for (const TimelineObserver::Sample& s : timeline.samples()) {
    peak = std::max(peak, s.live_bytes);
  }
  EXPECT_EQ(peak, 6 * GiB);  // 4 GiB (tenant 0) + 2 GiB (tenant 1) before the abort
}

TEST(ReplayEngine, TenantGangUnwindsTogetherOnOneSourceOom) {
  // Two sources form one tenant gang (pipeline ranks). When the second OOMs, the first — which
  // has live memory and no failure of its own — unwinds too.
  const Trace rank0 = MakeTrace({{3 * GiB, 1, 20}});
  const Trace rank1 = MakeTrace({{3 * GiB, 1, 20}, {3 * GiB, 2, 20}, {3 * GiB, 3, 20}});
  SimDevice dev(8 * GiB);
  NativeAllocator alloc(&dev);
  OomPolicyObserver policy(OomPolicy::kRequeue, /*max_retries=*/1);
  ReplayEngine engine(&policy);
  ReplaySource src;
  src.alloc = &alloc;
  src.tenant = 7;
  src.trace = &rank0;
  engine.AddSource(src);
  src.trace = &rank1;
  engine.AddSource(src);
  ASSERT_EQ(engine.tenant_sources(7).size(), 2u);
  const ReplayEngineResult& r = engine.Run();

  EXPECT_TRUE(r.oom);
  EXPECT_TRUE(engine.progress(0).aborted);
  EXPECT_TRUE(engine.progress(1).aborted);
  EXPECT_EQ(engine.progress(0).live_bytes, 0u);
  EXPECT_EQ(engine.progress(1).live_bytes, 0u);
  EXPECT_EQ(alloc.stats().allocated_current, 0u);  // every rank's blocks were freed
  EXPECT_EQ(policy.rejected_tenants(), 1u);        // gang alone on the device: no requeue
}

TEST(ReplayEngine, ExternallySteppedReplayMatchesRun) {
  const Trace trace = MakeTrace({{1 * MiB, 0, 4}, {2 * MiB, 1, 3}, {3 * MiB, 2, 6}});
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  ReplayEngine engine;
  ReplaySource src;
  src.trace = &trace;
  src.alloc = &alloc;
  engine.AddSource(src);

  // Drive the engine one op at a time, checking the announced next-op clock.
  uint64_t steps = 0;
  while (engine.HasPending()) {
    const uint64_t next = engine.NextOpTime();
    ASSERT_NE(next, ReplayEngine::kNoPendingOp);
    ASSERT_TRUE(engine.Step());
    EXPECT_EQ(engine.now(), next);
    ++steps;
  }
  EXPECT_EQ(steps, 6u);
  EXPECT_FALSE(engine.Step());
  EXPECT_TRUE(engine.progress(0).done);
  // Run() on a drained engine just finalizes the result.
  EXPECT_EQ(engine.Run().ops_replayed, 6u);
}

TEST(ReplayEngine, TimelineObserverSamplesTheLiveBytesCurve) {
  const Trace trace =
      MakeTrace({{4 * MiB, 0, 3}, {2 * MiB, 1, 5}, {1 * MiB, 2, 4}});  // peak 7 MiB at t=2
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  TimelineObserver timeline(/*sample_every=*/1);
  ReplayEngine engine(&timeline);
  ReplaySource src;
  src.trace = &trace;
  src.alloc = &alloc;
  engine.AddSource(src);
  ASSERT_FALSE(engine.Run().oom);

  ASSERT_EQ(timeline.samples().size(), 6u);
  uint64_t peak = 0;
  for (const TimelineObserver::Sample& s : timeline.samples()) {
    peak = std::max(peak, s.live_bytes);
  }
  EXPECT_EQ(peak, 7 * MiB);
  EXPECT_EQ(timeline.samples().back().live_bytes, 0u);
}

// The legacy ReplayTrace wrapper and a hand-driven single-source engine must agree op for op —
// the engine's single-source fast path replays exactly the historical loop.
TEST(ReplayEngine, ReplayTraceWrapperMatchesDirectEngineUse) {
  TrainConfig config;
  config.num_microbatches = 2;
  config.micro_batch_size = 2;
  WorkloadBuilder wb(Gpt2_345M(), config);
  const Trace trace = wb.Build(3);

  SimDevice dev_a(32 * GiB);
  CachingAllocator alloc_a(&dev_a);
  const ReplayResult via_wrapper = ReplayTrace(trace, &alloc_a);

  SimDevice dev_b(32 * GiB);
  CachingAllocator alloc_b(&dev_b);
  ReplayEngine engine;
  ReplaySource src;
  src.trace = &trace;
  src.alloc = &alloc_b;
  engine.AddSource(src);
  const ReplayEngineResult& direct = engine.Run();

  EXPECT_FALSE(via_wrapper.oom);
  EXPECT_FALSE(direct.oom);
  EXPECT_EQ(via_wrapper.num_mallocs, direct.num_mallocs);
  EXPECT_EQ(via_wrapper.num_frees, direct.num_frees);
  EXPECT_EQ(alloc_a.stats().allocated_peak, alloc_b.stats().allocated_peak);
  EXPECT_EQ(alloc_a.stats().reserved_peak, alloc_b.stats().reserved_peak);
}

// --- the sharded-fleet primitives: park-on-OOM, bounded stepping, precomputable end times ---

TEST(ReplayEngine, ParkSourceHoldsLiveBlocksUntilAbortTenant) {
  class ParkOnOom : public ReplayObserver {
   public:
    OomAction OnOom(ReplayEngine&, const ReplayOpView&) override {
      ++ooms;
      return OomAction::kParkSource;
    }
    int ooms = 0;
  };
  // Source 0 fills the device and then OOMs on a second huge block; source 1 keeps running.
  const Trace big = MakeTrace({{700 * MiB, 0, 20}, {700 * MiB, 5, 20}});
  const Trace small = MakeTrace({{1 * MiB, 0, 2}, {1 * MiB, 4, 8}});
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  SimDevice dev2(1 * GiB);
  NativeAllocator alloc2(&dev2);
  ParkOnOom obs;
  ReplayEngine engine(&obs);
  ReplaySource a;
  a.trace = &big;
  a.alloc = &alloc;
  engine.AddSource(a);
  ReplaySource b;
  b.trace = &small;
  b.alloc = &alloc2;
  engine.AddSource(b);

  // Step to the failing malloc at tick 5.
  engine.StepUntil(6);
  EXPECT_EQ(obs.ooms, 1);
  // Parked: descheduled but NOT unwound — the first block is still live, the cursor parked on
  // the failing op, and only source 1 counts as active.
  EXPECT_TRUE(engine.progress(0).parked);
  EXPECT_FALSE(engine.progress(0).active);
  EXPECT_FALSE(engine.progress(0).done);
  EXPECT_EQ(alloc.stats().allocated_current, 700 * MiB);
  EXPECT_EQ(engine.active_sources(), 1u);
  // The parked source contributes no pending op; the engine would drain source 1 and stop.
  engine.StepUntil(ReplayEngine::kNoPendingOp);
  EXPECT_FALSE(engine.HasPending());
  EXPECT_EQ(alloc.stats().allocated_current, 700 * MiB);  // still held across the window

  // The deferred unwind: AbortTenant frees the parked source's live blocks.
  engine.AbortTenant(engine.source(0).tenant);
  EXPECT_FALSE(engine.progress(0).parked);
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
  // Unwind frees hit the allocator but are not replayed ops.
  EXPECT_EQ(alloc.stats().num_frees, 1u);
  EXPECT_EQ(engine.result().num_frees, 2u);  // only source 1's two replayed frees
}

TEST(ReplayEngine, RunCleanupUnwindsForgottenParkedSources) {
  class ParkOnOom : public ReplayObserver {
   public:
    OomAction OnOom(ReplayEngine&, const ReplayOpView&) override {
      return OomAction::kParkSource;
    }
  };
  const Trace big = MakeTrace({{700 * MiB, 0, 20}, {700 * MiB, 5, 20}});
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  ParkOnOom obs;
  ReplayEngine engine(&obs);
  ReplaySource src;
  src.trace = &big;
  src.alloc = &alloc;
  engine.AddSource(src);
  engine.Run();  // a coordinator that never aborts: final cleanup must not leak the blocks
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
  EXPECT_FALSE(engine.progress(0).parked);
}

TEST(ReplayEngine, StepUntilHonorsTheExclusiveHorizon) {
  const Trace trace = MakeTrace({{1 * MiB, 0, 10}, {1 * MiB, 5, 10}, {1 * MiB, 7, 12}});
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  OpRecorder recorder;
  ReplayEngine engine(&recorder);
  ReplaySource src;
  src.trace = &trace;
  src.alloc = &alloc;
  engine.AddSource(src);

  engine.StepUntil(5);  // ops at tick 5 are OUTSIDE a horizon of 5
  ASSERT_EQ(recorder.seen.size(), 1u);
  EXPECT_EQ(recorder.seen[0].time, 0u);
  EXPECT_EQ(engine.NextOpTime(), 5u);

  engine.StepUntil(8);  // picks up ticks 5 and 7
  ASSERT_EQ(recorder.seen.size(), 3u);
  EXPECT_EQ(recorder.seen.back().time, 7u);

  engine.StepUntil(ReplayEngine::kNoPendingOp);  // drains the rest
  EXPECT_FALSE(engine.HasPending());
  EXPECT_TRUE(engine.progress(0).done);
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
}

TEST(ReplayEngine, SourceEndTimePredictsTheFinalOpTick) {
  const Trace trace = MakeTrace({{1 * MiB, 2, 9}, {2 * MiB, 4, 6}});
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  ReplayEngine engine(nullptr);
  ReplaySource one;
  one.trace = &trace;
  one.alloc = &alloc;
  one.start = 100;
  engine.AddSource(one);
  ReplaySource three = one;
  three.start = 0;
  three.iterations = 3;
  three.period = 50;
  engine.AddSource(three);

  // Single iteration: start + last op offset. Three iterations: start of the last iteration
  // plus the same offset.
  EXPECT_EQ(engine.SourceEndTime(0), 100u + trace.end_time());
  EXPECT_EQ(engine.SourceEndTime(1), 2u * 50u + trace.end_time());
  EXPECT_EQ(engine.MinActiveEndTime(), engine.SourceEndTime(0));

  // The prediction is exact: the engine's last replayed op lands on max SourceEndTime.
  const uint64_t predicted_last =
      std::max(engine.SourceEndTime(0), engine.SourceEndTime(1));
  OpRecorder recorder;
  ReplayEngine replay(&recorder);
  replay.AddSource(one);
  replay.AddSource(three);
  replay.Run();
  EXPECT_EQ(recorder.seen.back().time, predicted_last);
  // Nothing active once drained.
  EXPECT_EQ(replay.MinActiveEndTime(), ReplayEngine::kNoPendingOp);
}

TEST(ReplayEngine, OomPolicyNamesAreStable) {
  EXPECT_STREQ(OomPolicyName(OomPolicy::kAbort), "abort");
  EXPECT_STREQ(OomPolicyName(OomPolicy::kRequeue), "requeue");
  EXPECT_STREQ(OomPolicyName(OomPolicy::kPreemptRecompute), "preempt-recompute");
}

}  // namespace
}  // namespace stalloc
