// The VMM allocator family (src/vmm): VA reservation invariants, map-table exhaustion,
// remap-based compaction decisions, the granularity trade-off, and fleet determinism with the
// vmm kind plugged into the sharded cluster.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/cluster/scheduler.h"
#include "src/common/units.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/telemetry/heap_map.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace.h"
#include "src/vmm/va_space.h"
#include "src/vmm/vmm_allocator.h"

namespace stalloc {
namespace {

constexpr uint64_t kPage = SimDevice::kGranularity;  // 2 MiB

VmmConfig NoSmallPool() {
  VmmConfig config;
  config.small_size = 0;  // large path only: page math is exact, no caching-pool reserve
  return config;
}

// --- VaSpace: the reservation is made once, pages map/unmap inside it ---

TEST(VaSpace, ReservationInvariants) {
  SimDevice dev(1 * GiB);
  VaSpace va(&dev, 64 * MiB, kPage);
  EXPECT_EQ(dev.counters().va_reserve, 1u);
  EXPECT_NE(va.base(), 0u);  // never 0: 0 is the allocator's failure value
  EXPECT_EQ(va.num_pages(), 32u);
  EXPECT_EQ(va.mapped_bytes(), 0u);

  const MemHandle h = *dev.MemCreate(kPage);
  va.MapPage(3, h);
  EXPECT_TRUE(va.IsMapped(3));
  EXPECT_EQ(va.mapped_bytes(), kPage);
  EXPECT_EQ(va.UnmapPage(3), h);
  EXPECT_FALSE(va.IsMapped(3));
  dev.MemRelease(h);
  // The reservation itself is untouched by map churn.
  EXPECT_EQ(dev.counters().va_reserve, 1u);
}

TEST(VaSpace, DestructorReturnsEverything) {
  SimDevice dev(1 * GiB);
  {
    VaSpace va(&dev, 16 * MiB, kPage);
    va.MapPage(0, *dev.MemCreate(kPage));
    va.MapPage(7, *dev.MemCreate(kPage));
    EXPECT_EQ(dev.physical_used(), 2 * kPage);
  }
  EXPECT_EQ(dev.physical_used(), 0u);
  EXPECT_EQ(dev.counters().va_free, dev.counters().va_reserve);
  EXPECT_EQ(dev.counters().mem_release, dev.counters().mem_create);
}

// --- VmmAllocator: VA exhaustion is an OOM even with physical memory to spare ---

TEST(VmmAllocator, MapTableExhaustionIsOom) {
  SimDevice dev(1 * GiB);
  VmmConfig config = NoSmallPool();
  config.va_size = 8 * kPage;  // tiny reservation; the device could back 512 pages
  VmmAllocator alloc(&dev, config);
  auto a = alloc.Malloc(8 * kPage);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(alloc.Malloc(kPage).has_value()) << "no VA left: must fail, not wrap";
  ASSERT_TRUE(alloc.Free(*a));
  // Freed VA is reusable; physical stayed far below capacity throughout.
  EXPECT_TRUE(alloc.Malloc(8 * kPage).has_value());
  EXPECT_LE(dev.physical_used(), 8 * kPage);
}

// --- remap-based compaction: the decision pins ---

// Checkerboard: A B C D at 2 pages each fills a tight device; freeing B and D leaves two idle
// 2-page holes. A 4-page request fits neither hole virtually, and physically the device is
// exhausted. The pinned decision chain: best-fit places the block over D's coalesced hole
// (reusing D's two still-mapped pages), and the two pages beyond it are backed by *remapping*
// B's idle handles — no new physical memory, zero bytes copied.
TEST(VmmAllocator, RemapStealsIdlePagesInsteadOfCreating) {
  SimDevice dev(8 * kPage);
  VmmConfig config = NoSmallPool();
  config.va_size = 32 * kPage;  // VA is plentiful; only physical is tight
  VmmAllocator alloc(&dev, config);
  auto a = alloc.Malloc(2 * kPage);
  auto b = alloc.Malloc(2 * kPage);
  auto c = alloc.Malloc(2 * kPage);
  auto d = alloc.Malloc(2 * kPage);
  ASSERT_TRUE(a && b && c && d);
  EXPECT_EQ(dev.physical_used(), 8 * kPage);
  const uint64_t handles_before = alloc.handle_pool().stats().created;
  ASSERT_TRUE(alloc.Free(*b));
  ASSERT_TRUE(alloc.Free(*d));

  auto big = alloc.Malloc(4 * kPage);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(*big, *d) << "best fit must reuse D's coalesced (still-mapped) hole";
  EXPECT_EQ(alloc.handle_pool().stats().created, handles_before)
      << "remap must not create handles";
  EXPECT_EQ(dev.physical_used(), 8 * kPage) << "no new physical memory";
  EXPECT_EQ(alloc.vmm_stats().remap_events, 1u);
  EXPECT_EQ(alloc.vmm_stats().pages_remapped, 2u) << "only the pages beyond D's hole remap";
  EXPECT_EQ(alloc.vmm_stats().bytes_remapped, 2 * kPage);
  EXPECT_EQ(alloc.vmm_stats().bytes_copied, 0u);
  ASSERT_TRUE(alloc.Free(*a) && alloc.Free(*c) && alloc.Free(*big));
}

// The same squeeze with remapping disabled is a hard OOM: the config knob isolates exactly what
// the remap path buys.
TEST(VmmAllocator, SameSqueezeWithoutRemapIsOom) {
  SimDevice dev(8 * kPage);
  VmmConfig config = NoSmallPool();
  config.va_size = 32 * kPage;
  config.remap = false;
  VmmAllocator alloc(&dev, config);
  auto a = alloc.Malloc(2 * kPage);
  auto b = alloc.Malloc(2 * kPage);
  auto c = alloc.Malloc(2 * kPage);
  auto d = alloc.Malloc(2 * kPage);
  ASSERT_TRUE(a && b && c && d);
  ASSERT_TRUE(alloc.Free(*b));
  ASSERT_TRUE(alloc.Free(*d));
  EXPECT_FALSE(alloc.Malloc(4 * kPage).has_value());
  EXPECT_EQ(alloc.vmm_stats().pages_remapped, 0u);
}

// A partially-referenced page is never stolen: two live single-page neighbours pin their pages
// even when everything between them is free.
TEST(VmmAllocator, ReferencedPagesAreNeverStolen) {
  SimDevice dev(4 * kPage);
  VmmConfig config = NoSmallPool();
  config.va_size = 32 * kPage;
  VmmAllocator alloc(&dev, config);
  auto a = alloc.Malloc(kPage);
  auto b = alloc.Malloc(2 * kPage);
  auto c = alloc.Malloc(kPage);
  ASSERT_TRUE(a && b && c);
  ASSERT_TRUE(alloc.Free(*b));
  // Physical is full (4 pages); the 2 idle pages under b are the only stealable supply. A
  // 3-page request must fail — stealing a's or c's page would corrupt live data.
  EXPECT_FALSE(alloc.Malloc(3 * kPage).has_value());
  // And the 2-page request succeeds purely from the idle supply.
  const uint64_t created_before = dev.counters().mem_create;
  EXPECT_TRUE(alloc.Malloc(2 * kPage).has_value());
  EXPECT_EQ(dev.counters().mem_create, created_before);
}

TEST(VmmAllocator, EmptyCacheReleasesIdlePagesToDevice) {
  SimDevice dev(16 * kPage);
  VmmAllocator alloc(&dev, NoSmallPool());
  auto a = alloc.Malloc(4 * kPage);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(alloc.Free(*a));
  // Lazy: freed pages stay mapped (that is what makes them remappable)...
  EXPECT_EQ(alloc.va_space().mapped_bytes(), 4 * kPage);
  // ...until EmptyCache, which unmaps them and releases the handles.
  alloc.EmptyCache();
  EXPECT_EQ(alloc.va_space().mapped_bytes(), 0u);
  EXPECT_EQ(dev.physical_used(), 0u);
}

TEST(VmmAllocator, DoubleFreeIsRejectedNotFatal) {
  SimDevice dev(16 * kPage);
  VmmAllocator alloc(&dev, NoSmallPool());
  auto a = alloc.Malloc(2 * kPage);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(alloc.Free(*a));
  EXPECT_FALSE(alloc.Free(*a));
  EXPECT_FALSE(alloc.Free(0xdead000));
}

TEST(VmmAllocator, HeapSegmentsCoverContiguousMappedRuns) {
  SimDevice dev(16 * kPage);
  VmmAllocator alloc(&dev, NoSmallPool());
  auto a = alloc.Malloc(2 * kPage);
  auto b = alloc.Malloc(2 * kPage);
  ASSERT_TRUE(a && b);
  std::vector<telemetry::HeapSegment> segments;
  alloc.AppendHeapSegments(&segments);
  ASSERT_EQ(segments.size(), 1u) << "adjacent mapped pages must report as one segment";
  EXPECT_EQ(segments[0].base, alloc.va_space().base());
  EXPECT_EQ(segments[0].size, 4 * kPage);
  ASSERT_TRUE(alloc.Free(*a) && alloc.Free(*b));
}

// --- granularity trade-off: huge pages cost Mr, small granules cost map calls ---

TEST(VmmAllocator, SmallGranularityTracksMrTighterHugePagesMapLess) {
  const Trace trace = BuildStormTrace(2000, 7);

  auto run = [&](uint64_t granularity) {
    SimDevice dev(64 * GiB);
    VmmConfig config;
    config.granularity = granularity;
    VmmAllocator alloc(&dev, config);
    ReplayResult r = ReplayTrace(trace, &alloc);
    EXPECT_FALSE(r.oom);
    return std::make_pair(r.reserved_peak, alloc.vmm_stats().map_calls);
  };

  const auto [mr_huge, maps_huge] = run(SimDevice::kGranularity);
  const auto [mr_small, maps_small] = run(SimDevice::kMinGranularity);
  EXPECT_LE(mr_small, mr_huge) << "64 KiB granules must never reserve more than 2 MiB pages";
  EXPECT_LT(maps_huge, maps_small) << "huge pages must cost fewer map calls";
}

// --- fleet determinism: the vmm kind through the sharded cluster ---

TEST(VmmAllocator, FleetDigestBitIdenticalAcrossWorkerCounts) {
  ClusterWorkloadConfig workload;
  workload.num_jobs = 6;
  workload.train_fraction = 0.5;
  workload.mean_interarrival = 800;
  workload.micro_batches = {1, 2};
  workload.num_microbatches = 2;
  workload.max_pp = 2;
  workload.min_iterations = 1;
  workload.max_iterations = 2;
  workload.serve_requests = 12;
  workload.kv_budget_bytes = 1 * GiB;
  const auto jobs = GenerateClusterWorkload(workload, 21);

  FleetConfig fleet;
  fleet.device_capacities = {16 * GiB, 16 * GiB, 16 * GiB};
  fleet.policy = SchedulerPolicy::kFirstFit;
  fleet.allocator = AllocatorKind::kVmm;
  fleet.workers = 0;
  const ClusterResult serial = RunCluster(fleet, jobs);
  EXPECT_EQ(serial.completed, jobs.size());
  for (int workers : {1, 2, 8}) {
    fleet.workers = workers;
    const ClusterResult parallel = RunCluster(fleet, jobs);
    EXPECT_EQ(parallel.Digest(), serial.Digest()) << "diverged at workers=" << workers;
  }
}

}  // namespace
}  // namespace stalloc
