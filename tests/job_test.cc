#include "src/driver/job.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/trainsim/model_config.h"

namespace stalloc {
namespace {

TrainConfig SmallConfig() {
  TrainConfig c;
  c.parallel.pp = 2;
  c.parallel.dp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 4;
  return c;
}

TEST(Job, RunsEveryPipelineRank) {
  JobResult job = RunJob(Gpt2_345M(), SmallConfig(), AllocatorKind::kCaching);
  ASSERT_EQ(job.ranks.size(), 2u);
  EXPECT_FALSE(job.oom);
  EXPECT_GT(job.max_reserved, 0u);
  EXPECT_GE(job.total_reserved, job.max_reserved);
  EXPECT_LE(job.worst_efficiency, job.ranks[0].memory_efficiency + 1e-12);
}

TEST(Job, WorstMetricsAggregate) {
  JobResult job = RunJob(Gpt2_345M(), SmallConfig(), AllocatorKind::kCaching);
  double min_eff = 1.0;
  uint64_t max_mr = 0;
  uint64_t total = 0;
  for (const auto& r : job.ranks) {
    min_eff = std::min(min_eff, r.memory_efficiency);
    max_mr = std::max(max_mr, r.reserved_peak);
    total += r.reserved_peak;
  }
  EXPECT_DOUBLE_EQ(job.worst_efficiency, min_eff);
  EXPECT_EQ(job.max_reserved, max_mr);
  EXPECT_EQ(job.total_reserved, total);
  EXPECT_EQ(job.ranks[static_cast<size_t>(job.limiting_rank)].reserved_peak, max_mr);
}

TEST(Job, OomOnAnyRankMarksJob) {
  ExperimentOptions opt;
  opt.capacity_bytes = 1 * GiB;  // too small
  JobResult job = RunJob(Gpt2_345M(), SmallConfig(), AllocatorKind::kCaching, opt);
  EXPECT_TRUE(job.oom);
  EXPECT_NE(job.Summary().find("OOM"), std::string::npos);
}

TEST(Job, StallocBeatsCachingJobWide) {
  JobResult torch = RunJob(Gpt2_345M(), SmallConfig(), AllocatorKind::kCaching);
  JobResult st = RunJob(Gpt2_345M(), SmallConfig(), AllocatorKind::kSTAlloc);
  ASSERT_FALSE(torch.oom || st.oom);
  EXPECT_GE(st.worst_efficiency, torch.worst_efficiency);
  EXPECT_LE(st.total_reserved, torch.total_reserved);
}

TEST(Job, SummaryFormats) {
  JobResult job = RunJob(Gpt2_345M(), SmallConfig(), AllocatorKind::kSTAlloc);
  const std::string s = job.Summary();
  EXPECT_NE(s.find("worst E="), std::string::npos);
  EXPECT_NE(s.find("rank"), std::string::npos);
}

}  // namespace
}  // namespace stalloc
