#include "src/trace/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"

namespace stalloc {
namespace {

Trace MakeSimpleTrace() {
  Trace t;
  t.set_name("simple");
  PhaseId init = t.AddPhase({PhaseKind::kIterInit, -1, -1, 0, 2});
  PhaseId fwd = t.AddPhase({PhaseKind::kForward, 0, 0, 2, 6});
  PhaseId bwd = t.AddPhase({PhaseKind::kBackward, 0, 0, 6, 10});
  LayerId l0 = t.AddLayer({"fwd/l0", 2, 4});
  LayerId l1 = t.AddLayer({"bwd/l0", 6, 8});

  MemoryEvent weights;  // persistent
  weights.size = 4096;
  weights.ts = 0;
  weights.te = 10;
  weights.ps = init;
  weights.pe = bwd;
  t.AddEvent(weights);

  MemoryEvent act;  // scoped: fwd -> bwd
  act.size = 2048;
  act.ts = 3;
  act.te = 7;
  act.ps = fwd;
  act.pe = bwd;
  t.AddEvent(act);

  MemoryEvent tmp;  // transient within fwd
  tmp.size = 1024;
  tmp.ts = 4;
  tmp.te = 5;
  tmp.ps = fwd;
  tmp.pe = fwd;
  t.AddEvent(tmp);

  MemoryEvent dyn;  // dynamic (expert) event
  dyn.size = 512;
  dyn.ts = 3;
  dyn.te = 7;
  dyn.ps = fwd;
  dyn.pe = bwd;
  dyn.dyn = true;
  dyn.ls = l0;
  dyn.le = l1;
  t.AddEvent(dyn);
  return t;
}

TEST(Trace, AssignsDenseIds) {
  Trace t = MakeSimpleTrace();
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.event(i).id, i);
  }
}

TEST(Trace, EndTimeIsMaxTe) {
  Trace t = MakeSimpleTrace();
  EXPECT_EQ(t.end_time(), 10u);
}

TEST(Trace, ClassifiesLifespans) {
  Trace t = MakeSimpleTrace();
  EXPECT_EQ(t.Classify(t.event(0)), LifespanClass::kPersistent);
  EXPECT_EQ(t.Classify(t.event(1)), LifespanClass::kScoped);
  EXPECT_EQ(t.Classify(t.event(2)), LifespanClass::kTransient);
  EXPECT_EQ(t.Classify(t.event(3)), LifespanClass::kScoped);
}

TEST(Trace, OpsAreTimeOrderedWithFreesFirst) {
  Trace t = MakeSimpleTrace();
  auto ops = t.Ops();
  ASSERT_EQ(ops.size(), t.size() * 2);
  for (size_t i = 1; i < ops.size(); ++i) {
    EXPECT_LE(ops[i - 1].time, ops[i].time);
    if (ops[i - 1].time == ops[i].time) {
      // Frees must not come after mallocs at the same tick.
      EXPECT_FALSE(ops[i - 1].kind == TraceOp::Kind::kMalloc &&
                   ops[i].kind == TraceOp::Kind::kFree);
    }
  }
}

TEST(Trace, ValidateAcceptsWellFormed) {
  Trace t = MakeSimpleTrace();
  t.Validate();  // must not abort
}

TEST(TraceDeathTest, AddEventRejectsEmptyLifespan) {
  Trace t;
  MemoryEvent e;
  e.size = 512;
  e.ts = 5;
  e.te = 5;
  EXPECT_DEATH(t.AddEvent(e), "positive lifespan");
}

TEST(TraceStats, PeakAllocatedSweep) {
  Trace t = MakeSimpleTrace();
  // Live bytes: weights 4096 throughout; act+dyn from t=3 (2048+512); tmp 1024 on [4,5).
  // Peak = 4096 + 2048 + 512 + 1024 = 7680 on [4,5).
  EXPECT_EQ(PeakAllocated(t), 7680u);
}

TEST(TraceStats, ComputeStatsCounts) {
  Trace t = MakeSimpleTrace();
  TraceStats stats = ComputeStats(t, /*min_size_filter=*/512);
  EXPECT_EQ(stats.num_events, 4u);
  EXPECT_EQ(stats.num_dynamic, 1u);
  EXPECT_EQ(stats.num_static, 3u);
  EXPECT_EQ(stats.persistent_count, 1u);
  EXPECT_EQ(stats.scoped_count, 2u);
  EXPECT_EQ(stats.transient_count, 1u);
  // Sizes > 512: 4096, 2048, 1024 -> 3 distinct.
  EXPECT_EQ(stats.distinct_sizes, 3u);
  EXPECT_EQ(stats.peak_allocated, 7680u);
}

TEST(TraceStats, LiveBytesCurveEndsAtZero) {
  Trace t = MakeSimpleTrace();
  auto curve = LiveBytesCurve(t.events());
  ASSERT_FALSE(curve.empty());
  EXPECT_EQ(curve.back().second, 0u);
}

TEST(TraceIo, CsvRoundtrip) {
  Trace t = MakeSimpleTrace();
  std::stringstream ss;
  WriteTraceCsv(t, ss);
  Trace back;
  TraceIoError err;
  ASSERT_TRUE(ReadTraceCsv(ss, &back, &err)) << err.ToString();
  ASSERT_EQ(back.size(), t.size());
  EXPECT_EQ(back.name(), t.name());
  EXPECT_EQ(back.phases().size(), t.phases().size());
  EXPECT_EQ(back.layers().size(), t.layers().size());
  for (size_t i = 0; i < t.size(); ++i) {
    const auto& a = t.event(i);
    const auto& b = back.event(i);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.te, b.te);
    EXPECT_EQ(a.ps, b.ps);
    EXPECT_EQ(a.pe, b.pe);
    EXPECT_EQ(a.dyn, b.dyn);
    EXPECT_EQ(a.ls, b.ls);
    EXPECT_EQ(a.le, b.le);
  }
  // Layer metadata (windows) survives the roundtrip — required for dynamic planning.
  EXPECT_EQ(back.layer(0).start, t.layer(0).start);
  EXPECT_EQ(back.layer(0).end, t.layer(0).end);
}

TEST(TraceIo, BinaryRoundtrip) {
  Trace t = MakeSimpleTrace();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  WriteTraceBinary(t, ss);
  Trace back;
  TraceIoError err;
  ASSERT_TRUE(ReadTraceBinary(ss, &back, &err)) << err.ToString();
  ASSERT_EQ(back.size(), t.size());
  EXPECT_EQ(back.name(), t.name());
  ASSERT_EQ(back.phases().size(), t.phases().size());
  ASSERT_EQ(back.layers().size(), t.layers().size());
  for (size_t i = 0; i < t.size(); ++i) {
    const auto& a = t.event(i);
    const auto& b = back.event(i);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.te, b.te);
    EXPECT_EQ(a.ps, b.ps);
    EXPECT_EQ(a.pe, b.pe);
    EXPECT_EQ(a.dyn, b.dyn);
    EXPECT_EQ(a.ls, b.ls);
    EXPECT_EQ(a.le, b.le);
    EXPECT_EQ(a.stream, b.stream);
  }
  EXPECT_EQ(back.layer(1).name, t.layer(1).name);
  EXPECT_EQ(back.phase(1).start, t.phase(1).start);
}

TEST(TraceIo, BinaryRejectsGarbage) {
  std::stringstream ss;
  ss << "definitely not a trace";
  Trace back;
  TraceIoError err;
  EXPECT_FALSE(ReadTraceBinary(ss, &back, &err));
  EXPECT_EQ(err.message, "not a binary stalloc trace");
}

TEST(TraceIo, BinaryRoundtripAtScale) {
  Trace t;
  PhaseId p = t.AddPhase({PhaseKind::kForward, 0, 0, 0, 100000});
  for (uint64_t i = 0; i < 4000; ++i) {
    MemoryEvent e;
    e.size = 1024 + i;
    e.ts = i * 2;
    e.te = i * 2 + 1;
    e.ps = p;
    e.pe = p;
    t.AddEvent(e);
  }
  std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
  WriteTraceBinary(t, bin);
  Trace back;
  TraceIoError err;
  ASSERT_TRUE(ReadTraceBinary(bin, &back, &err)) << err.ToString();
  ASSERT_EQ(back.size(), t.size());
  EXPECT_EQ(back.event(3999).size, t.event(3999).size);
  // Fixed-width encoding: exactly 42 bytes per event after the header sections.
  EXPECT_EQ(bin.str().size() % 42, (bin.str().size() - 42 * 4000) % 42);
}

TEST(PhaseInfo, ToStringFormat) {
  PhaseInfo p{PhaseKind::kForward, 3, 1, 0, 0};
  EXPECT_EQ(p.ToString(), "fwd/mb3/c1");
  PhaseInfo init{PhaseKind::kIterInit, -1, -1, 0, 0};
  EXPECT_EQ(init.ToString(), "init");
}

}  // namespace
}  // namespace stalloc
