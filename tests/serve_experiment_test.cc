// ServeExperiment end-to-end: every allocator kind over serving traces, deterministic results,
// and the serving-specific shape — the paged-KV pool at home, STAlloc surviving on its fallback
// path where the static-plan assumption no longer holds.

#include "src/driver/serve_experiment.h"

#include <string>

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/trainsim/model_config.h"

namespace stalloc {
namespace {

ServeOptions SmallOptions() {
  ServeOptions opt;
  opt.base.capacity_bytes = 16ull * GiB;
  opt.engine.kv_budget_bytes = 2ull * GiB;
  return opt;
}

ServeScenario SmallScenario(const char* name) {
  ServeScenario s = ScenarioByName(name);
  s.num_requests = s.num_requests / 2;
  return s;
}

TEST(ServeExperiment, AllKindsCompleteOnEveryPreset) {
  const ModelConfig model = ModelByName("gpt2");
  for (const std::string& name : ScenarioNames()) {
    const ServeScenario scenario = SmallScenario(name.c_str());
    for (AllocatorKind kind : AllAllocatorKinds()) {
      ServeExperimentResult r = RunServeExperiment(model, scenario, kind, SmallOptions());
      EXPECT_FALSE(r.replay.oom) << name << "/" << AllocatorKindName(kind);
      EXPECT_FALSE(r.replay.infeasible) << name << "/" << AllocatorKindName(kind);
      EXPECT_GT(r.replay.memory_efficiency, 0.5) << name << "/" << AllocatorKindName(kind);
      EXPECT_GT(r.trace_events, 0u);
      EXPECT_EQ(r.serve.completed + r.serve.rejected, r.serve.num_requests);
    }
  }
}

TEST(ServeExperiment, DeterministicAcrossRuns) {
  const ModelConfig model = ModelByName("gpt2");
  const ServeScenario scenario = SmallScenario("chat");
  for (AllocatorKind kind : {AllocatorKind::kCaching, AllocatorKind::kPagedKV}) {
    ServeExperimentResult a = RunServeExperiment(model, scenario, kind, SmallOptions());
    ServeExperimentResult b = RunServeExperiment(model, scenario, kind, SmallOptions());
    EXPECT_EQ(a.replay.reserved_peak, b.replay.reserved_peak);
    EXPECT_EQ(a.replay.allocated_peak, b.replay.allocated_peak);
    EXPECT_EQ(a.replay.device_api_calls, b.replay.device_api_calls);
    EXPECT_EQ(a.serve.preemptions, b.serve.preemptions);
    EXPECT_EQ(a.trace_events, b.trace_events);
  }
}

TEST(ServeExperiment, PagedKvBeatsCachingOnKvHeavyServing) {
  // rag-long is KV-cache dominated; the block pool's zero external fragmentation must show.
  const ModelConfig model = ModelByName("gpt2");
  const ServeScenario scenario = SmallScenario("rag-long");
  ServeExperimentResult paged =
      RunServeExperiment(model, scenario, AllocatorKind::kPagedKV, SmallOptions());
  ServeExperimentResult caching =
      RunServeExperiment(model, scenario, AllocatorKind::kCaching, SmallOptions());
  ASSERT_FALSE(paged.replay.oom || caching.replay.oom);
  EXPECT_GE(paged.replay.memory_efficiency, caching.replay.memory_efficiency);
}

TEST(ServeExperiment, StallocFallsBackGracefullyOnServing) {
  // Serving is not iteration-repeatable: the plan covers the weights, the runtime requests take
  // the dynamic/fallback path — STAlloc must complete, with visible fallback traffic.
  const ModelConfig model = ModelByName("gpt2");
  ServeExperimentResult r =
      RunServeExperiment(model, SmallScenario("chat"), AllocatorKind::kSTAlloc, SmallOptions());
  ASSERT_FALSE(r.replay.oom);
  const STAllocBreakdown& b = r.replay.breakdown;
  EXPECT_GT(b.dynamic_reuse_hits + b.dynamic_fallbacks, 0u)
      << "serving requests must route through the dynamic/fallback machinery";
  EXPECT_GT(r.replay.plan_stats.num_dynamic_events, r.replay.plan_stats.num_static_events)
      << "almost everything in a serving trace is dynamic";
}

TEST(ServeExperiment, NativeDefinesServingFeasibility) {
  const ModelConfig model = ModelByName("gpt2");
  ServeOptions tight = SmallOptions();
  tight.base.capacity_bytes = 1 * GiB;  // weights alone are ~700 MiB; KV does not fit
  ServeExperimentResult native =
      RunServeExperiment(model, SmallScenario("chat"), AllocatorKind::kNative, tight);
  EXPECT_TRUE(native.replay.infeasible);
  ServeExperimentResult st =
      RunServeExperiment(model, SmallScenario("chat"), AllocatorKind::kSTAlloc, tight);
  EXPECT_TRUE(st.replay.infeasible) << "STAlloc profiling must detect serving infeasibility";
}

TEST(ServeExperiment, PreemptionMetricsSurfaceInSummary) {
  const ModelConfig model = ModelByName("gpt2");
  ServeOptions opt = SmallOptions();
  opt.engine.kv_budget_bytes = 1 * GiB;
  ServeExperimentResult r = RunServeExperiment(model, ScenarioByName("batch-offline"),
                                               AllocatorKind::kCaching, opt);
  ASSERT_FALSE(r.replay.oom);
  EXPECT_GT(r.serve.preemptions, 0u);
  const std::string summary = r.Summary();
  EXPECT_NE(summary.find("preempt="), std::string::npos);
  EXPECT_NE(summary.find("batch="), std::string::npos);
  // The satellite fix: release calls are printed by the base summary too.
  EXPECT_NE(r.replay.Summary().find("releases="), std::string::npos);
}

TEST(ServeExperiment, PagedBlockSizeDefaultsToWorkloadKvBlock) {
  const ModelConfig model = ModelByName("gpt2");
  ServeOptions opt = SmallOptions();
  // Deliberately mis-sized pool pages: a 4x larger page wastes 3/4 of every KV block.
  ServeOptions missized = opt;
  missized.base.paged_block_bytes = 4 * KvBlockBytes(model, opt.engine);
  ServeExperimentResult fit = RunServeExperiment(model, SmallScenario("batch-offline"),
                                                 AllocatorKind::kPagedKV, opt);
  ServeExperimentResult waste = RunServeExperiment(model, SmallScenario("batch-offline"),
                                                   AllocatorKind::kPagedKV, missized);
  ASSERT_FALSE(fit.replay.oom || waste.replay.oom);
  EXPECT_GT(fit.replay.memory_efficiency, waste.replay.memory_efficiency)
      << "page-granularity mismatch must cost internal fragmentation";
}

}  // namespace
}  // namespace stalloc
