#include "src/core/plan_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/core/planner.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

SynthesisResult SampleSynthesis() {
  TrainConfig c;
  c.parallel.pp = 2;
  c.parallel.ep = 4;
  c.parallel.dp = 4;
  c.num_microbatches = 4;
  c.micro_batch_size = 2;
  c.opt.recompute = RecomputeMode::kFull;
  WorkloadBuilder wb(Qwen15_MoE_A27B(), c);
  return SynthesizePlan(wb.Build(3));
}

TEST(PlanIo, RoundtripPreservesDecisions) {
  SynthesisResult s = SampleSynthesis();
  std::stringstream ss;
  WritePlanCsv(s.plan, s.dyn_space, ss);
  LoadedPlan back = ReadPlanCsv(ss);

  ASSERT_EQ(back.plan.decisions.size(), s.plan.decisions.size());
  EXPECT_EQ(back.plan.pool_size, s.plan.pool_size);
  EXPECT_EQ(back.plan.lower_bound, s.plan.lower_bound);
  for (size_t i = 0; i < s.plan.decisions.size(); ++i) {
    const auto& a = s.plan.decisions[i];
    const auto& b = back.plan.decisions[i];
    EXPECT_EQ(a.addr, b.addr);
    EXPECT_EQ(a.padded_size, b.padded_size);
    EXPECT_EQ(a.event.id, b.event.id);
    EXPECT_EQ(a.event.size, b.event.size);
    EXPECT_EQ(a.event.ts, b.event.ts);
    EXPECT_EQ(a.event.te, b.event.te);
    EXPECT_EQ(a.event.stream, b.event.stream);
  }
}

TEST(PlanIo, RoundtripPreservesDynamicSpace) {
  SynthesisResult s = SampleSynthesis();
  ASSERT_GT(s.dyn_space.group_count(), 0u);
  std::stringstream ss;
  WritePlanCsv(s.plan, s.dyn_space, ss);
  LoadedPlan back = ReadPlanCsv(ss);

  ASSERT_EQ(back.space.regions.size(), s.dyn_space.regions.size());
  for (const auto& [key, region] : s.dyn_space.regions) {
    auto it = back.space.regions.find(key);
    ASSERT_NE(it, back.space.regions.end());
    EXPECT_EQ(it->second, region);
  }
  ASSERT_EQ(back.space.expected_le.size(), s.dyn_space.expected_le.size());
  for (const auto& [ls, les] : s.dyn_space.expected_le) {
    ASSERT_EQ(back.space.expected_le.at(ls), les);
  }
}

TEST(PlanIo, LoadedPlanStillValid) {
  SynthesisResult s = SampleSynthesis();
  std::stringstream ss;
  WritePlanCsv(s.plan, s.dyn_space, ss);
  LoadedPlan back = ReadPlanCsv(ss);  // ReadPlanCsv validates (aborts on stomping)
  std::string error;
  EXPECT_TRUE(back.plan.Check(&error)) << error;
}

}  // namespace
}  // namespace stalloc
