// PagedKVAllocator invariants: block-pool hits, deterministic block reuse, slab growth and
// release, native passthrough for oversized requests, and accounting (no-stomp is enforced
// globally by AllocatorBase, which aborts on any overlap of live blocks).

#include "src/allocators/paged_kv.h"

#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/driver/experiment.h"
#include "src/trainsim/model_config.h"

namespace stalloc {
namespace {

PagedKVConfig SmallPool() {
  PagedKVConfig config;
  config.block_bytes = 1 * MiB;
  config.slab_blocks = 4;
  return config;
}

TEST(PagedKV, BlockRequestsComeFromThePool) {
  SimDevice device(1 * GiB);
  PagedKVAllocator alloc(&device, SmallPool());
  auto a = alloc.Malloc(1 * MiB);
  auto b = alloc.Malloc(512 * KiB);  // any request <= block_bytes consumes one block
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(alloc.num_slabs(), 1u);
  EXPECT_EQ(*b - *a, 1 * MiB) << "consecutive blocks of one slab";
  // One slab = one device allocation, regardless of block count.
  EXPECT_EQ(device.counters().cuda_malloc, 1u);
  EXPECT_EQ(alloc.ReservedBytes(), 4 * MiB);
  alloc.Free(*a);
  alloc.Free(*b);
}

TEST(PagedKV, FreedBlocksAreReusedLowestAddressFirst) {
  SimDevice device(1 * GiB);
  PagedKVAllocator alloc(&device, SmallPool());
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 4; ++i) {
    addrs.push_back(*alloc.Malloc(1 * MiB));
  }
  alloc.Free(addrs[2]);
  alloc.Free(addrs[0]);
  // Lowest freed address wins, deterministically.
  EXPECT_EQ(*alloc.Malloc(1 * MiB), addrs[0]);
  EXPECT_EQ(*alloc.Malloc(1 * MiB), addrs[2]);
  EXPECT_EQ(alloc.num_slabs(), 1u) << "reuse must not grow the pool";
  for (uint64_t a : addrs) {
    alloc.Free(a);
  }
}

TEST(PagedKV, PoolGrowsBySlabsAndShrinksUnderDevicePressure) {
  // 3 MiB device, 4-block slabs of 1 MiB: the first grow must halve down to 2 blocks.
  SimDevice device(3 * MiB);
  PagedKVAllocator alloc(&device, SmallPool());
  auto a = alloc.Malloc(1 * MiB);
  auto b = alloc.Malloc(1 * MiB);
  auto c = alloc.Malloc(1 * MiB);
  ASSERT_TRUE(a.has_value() && b.has_value() && c.has_value());
  EXPECT_EQ(alloc.num_slabs(), 2u);
  EXPECT_FALSE(alloc.Malloc(1 * MiB).has_value()) << "device exhausted";
  alloc.Free(*a);
  alloc.Free(*b);
  alloc.Free(*c);
}

TEST(PagedKV, OversizedRequestsPassThroughNatively) {
  SimDevice device(1 * GiB);
  PagedKVAllocator alloc(&device, SmallPool());
  auto big = alloc.Malloc(64 * MiB);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(alloc.num_slabs(), 0u) << "no pool involvement";
  EXPECT_EQ(alloc.ReservedBytes(), 64 * MiB);
  alloc.Free(*big);
  EXPECT_EQ(alloc.ReservedBytes(), 0u);
  EXPECT_EQ(device.physical_used(), 0u);
}

TEST(PagedKV, EmptyCacheReleasesOnlyFullyFreeSlabs) {
  SimDevice device(1 * GiB);
  PagedKVAllocator alloc(&device, SmallPool());
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 8; ++i) {  // two slabs
    addrs.push_back(*alloc.Malloc(1 * MiB));
  }
  ASSERT_EQ(alloc.num_slabs(), 2u);
  // Free all of the second slab, half of the first.
  for (int i = 2; i < 8; ++i) {
    alloc.Free(addrs[i]);
  }
  alloc.EmptyCache();
  EXPECT_EQ(alloc.num_slabs(), 1u) << "the half-used slab must stay";
  EXPECT_EQ(alloc.ReservedBytes(), 4 * MiB);
  alloc.Free(addrs[0]);
  alloc.Free(addrs[1]);
  alloc.EmptyCache();
  EXPECT_EQ(alloc.num_slabs(), 0u);
  EXPECT_EQ(alloc.ReservedBytes(), 0u);
  EXPECT_EQ(device.physical_used(), 0u);
}

TEST(PagedKV, OomOnPoolPathRetriesAfterReleasingSlabs) {
  // Device fits exactly one 4-block slab. A passthrough request then needs the whole device:
  // the allocator must release the (fully free) slab and succeed.
  SimDevice device(4 * MiB);
  PagedKVAllocator alloc(&device, SmallPool());
  auto block = alloc.Malloc(1 * MiB);
  ASSERT_TRUE(block.has_value());
  alloc.Free(*block);
  auto big = alloc.Malloc(4 * MiB - 512);
  ASSERT_TRUE(big.has_value()) << "EmptyCache retry must reclaim the free slab";
  alloc.Free(*big);
}

TEST(PagedKV, StatsTrackInternalFragmentation) {
  SimDevice device(1 * GiB);
  PagedKVConfig config = SmallPool();
  config.slab_blocks = 1;  // reserved tracks blocks exactly
  PagedKVAllocator alloc(&device, config);
  auto a = alloc.Malloc(256 * KiB);  // quarter-block request
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc.stats().allocated_current, 256 * KiB);
  EXPECT_EQ(alloc.ReservedBytes(), 1 * MiB);
  // E = Ma / Mr = 0.25: the tail of the block is internal waste.
  EXPECT_NEAR(alloc.stats().MemoryEfficiency(), 0.25, 1e-9);
  alloc.Free(*a);
}

TEST(PagedKV, RunsTheTrainingHarnessToo) {
  // kPagedKV is a first-class AllocatorKind: the training experiment path must complete (large
  // tensors all take the passthrough).
  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 2;
  config.micro_batch_size = 2;
  WorkloadBuilder wb(ModelByName("gpt2"), config);
  ExperimentResult r = RunExperiment(wb, AllocatorKind::kPagedKV);
  EXPECT_FALSE(r.oom);
  EXPECT_GT(r.memory_efficiency, 0.5);
}

}  // namespace
}  // namespace stalloc
