// Tests for the heap-map observability layer (src/telemetry/heap_map.*): the size-group
// labeler, the gap/attribution math and its exact invariant (sum(attribution) == free_bytes),
// allocator-side snapshot triggers (phase change, exact peak, OOM, every-N, per-allocator
// cap), the per-run attribution rollup, and the contract the whole subsystem hangs on:
// arming the recorder leaves the cluster digest bit-identical and the drained heap timeline
// is byte-for-byte the same at any worker count.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/allocators/allocator.h"
#include "src/allocators/registry.h"
#include "src/api/serializers.h"
#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/common/units.h"
#include "src/gpu/sim_device.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/heap_map.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"

namespace stalloc {
namespace {

using telemetry::FragAttributionRow;
using telemetry::HeapMapConfig;
using telemetry::HeapMapRecorder;
using telemetry::HeapSnapshot;
using telemetry::HeapTrigger;

// Every test starts and ends with telemetry disabled and the recorder disarmed and empty, so
// tests compose in one binary regardless of order.
class HeapMapTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }

  static void ResetAll() {
    telemetry::SetEnabled(false);
    HeapMapRecorder::Global().Disarm();
    HeapMapRecorder::Global().Drain();
    telemetry::MetricsRegistry::Global().Reset();
    telemetry::Tracer::Global().Clear();
    telemetry::FlightRecorder::Global().Drain();
  }
};

TEST_F(HeapMapTest, SizeGroupLabels) {
  EXPECT_EQ(telemetry::SizeGroupLabel(0), "<64K");
  EXPECT_EQ(telemetry::SizeGroupLabel(64 * KiB - 1), "<64K");
  EXPECT_EQ(telemetry::SizeGroupLabel(64 * KiB), "64K-256K");
  EXPECT_EQ(telemetry::SizeGroupLabel(1 * MiB), "1M-4M");
  EXPECT_EQ(telemetry::SizeGroupLabel(20 * MiB), "16M-64M");
  EXPECT_EQ(telemetry::SizeGroupLabel(512 * MiB), "256M-1G");
  EXPECT_EQ(telemetry::SizeGroupLabel(4 * GiB), ">=1G");
}

// The gap math on a hand-built frame: an interior gap splits between its two pinning
// neighbors (left gets the rounding remainder), an edge gap charges its single neighbor
// fully, and the rows sum to free_bytes exactly.
TEST_F(HeapMapTest, FinalizeAttributesGapsToPinningBlocks) {
  HeapSnapshot snap;
  telemetry::HeapSegment seg;
  seg.base = 0;
  seg.size = 100;
  snap.segments.push_back(seg);

  telemetry::HeapBlock b1;
  b1.addr = 0;
  b1.size = 10;
  b1.phase = 1;
  telemetry::HeapBlock b2;
  b2.addr = 20;
  b2.size = 10;
  b2.phase = 2;
  snap.blocks = {b1, b2};

  telemetry::FinalizeHeapSnapshot(&snap);

  EXPECT_EQ(snap.free_bytes, 80u);   // gap [10,20) + gap [30,100)
  EXPECT_EQ(snap.largest_gap, 70u);
  EXPECT_EQ(snap.num_gaps, 2u);

  uint64_t sum = 0;
  uint64_t phase1_bytes = 0, phase2_bytes = 0;
  for (const FragAttributionRow& row : snap.attribution) {
    sum += row.bytes;
    if (row.phase == 1) phase1_bytes += row.bytes;
    if (row.phase == 2) phase2_bytes += row.bytes;
  }
  EXPECT_EQ(sum, snap.free_bytes);
  EXPECT_EQ(phase1_bytes, 5u);        // half of the interior 10-byte gap
  EXPECT_EQ(phase2_bytes, 5u + 70u);  // other half + the whole trailing edge gap
}

// A reserved segment with no blocks at all is fragmentation nobody pins: it lands on the
// "idle" row rather than vanishing (the invariant must still hold).
TEST_F(HeapMapTest, EmptySegmentChargesIdleRow) {
  HeapSnapshot snap;
  telemetry::HeapSegment seg;
  seg.base = 1000;
  seg.size = 64;
  snap.segments.push_back(seg);

  telemetry::FinalizeHeapSnapshot(&snap);
  EXPECT_EQ(snap.free_bytes, 64u);
  ASSERT_EQ(snap.attribution.size(), 1u);
  EXPECT_EQ(snap.attribution[0].size_group, "idle");
  EXPECT_EQ(snap.attribution[0].bytes, 64u);
}

// With the recorder unarmed, an enabled-telemetry run must not record anything — the heap
// map costs one relaxed load and nothing else unless explicitly requested.
TEST_F(HeapMapTest, UnarmedRecorderCapturesNothing) {
  telemetry::SetEnabled(true);
  SimDevice device(64 * MiB);
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  ASSERT_NE(alloc, nullptr);
  const uint64_t addr = alloc->Malloc(1 * MiB).value();
  ASSERT_TRUE(alloc->Free(addr));
  EXPECT_EQ(HeapMapRecorder::Global().pending(), 0u);
  EXPECT_TRUE(HeapMapRecorder::Global().Drain().empty());
}

#if STALLOC_TELEMETRY

// The invariant on a real allocator: manual snapshots of a caching allocator mid-churn sum
// their attribution rows to free_bytes exactly, and free_bytes equals reserved-minus-covered.
TEST_F(HeapMapTest, ManualSnapshotInvariantOnCachingAllocator) {
  telemetry::SetEnabled(true);
  HeapMapRecorder::Global().Arm(HeapMapConfig{});
  SimDevice device(256 * MiB);
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  ASSERT_NE(alloc, nullptr);
  auto* base = dynamic_cast<AllocatorBase*>(alloc.get());
  ASSERT_NE(base, nullptr);

  // Churn that leaves holes: allocate a spread of sizes, free every other block.
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 24; ++i) {
    addrs.push_back(alloc->Malloc((1 + i % 5) * MiB).value());
  }
  for (size_t i = 0; i < addrs.size(); i += 2) {
    ASSERT_TRUE(alloc->Free(addrs[i]));
  }

  base->CaptureHeapSnapshot(HeapTrigger::kManual);
  std::vector<HeapSnapshot> timeline = HeapMapRecorder::Global().Drain();
  const HeapSnapshot* manual = nullptr;
  for (const HeapSnapshot& s : timeline) {
    if (s.trigger == HeapTrigger::kManual) manual = &s;
  }
  ASSERT_NE(manual, nullptr);
  EXPECT_GT(manual->free_bytes, 0u);
  EXPECT_GT(manual->num_gaps, 0u);
  uint64_t sum = 0;
  for (const FragAttributionRow& row : manual->attribution) sum += row.bytes;
  EXPECT_EQ(sum, manual->free_bytes);

  uint64_t segment_bytes = 0, block_bytes = 0;
  for (const auto& seg : manual->segments) segment_bytes += seg.size;
  for (const auto& block : manual->blocks) block_bytes += block.size;
  EXPECT_EQ(manual->free_bytes, segment_bytes - block_bytes);
}

// Leaving a new global allocated high-water mark snapshots the heap *before* the first free
// applies: the frame's allocated equals Ma exactly, with the full peak-resident set on board.
// Re-touching the same peak later must not re-snapshot.
TEST_F(HeapMapTest, ExactPeakFrameCapturedOnDescent) {
  telemetry::SetEnabled(true);
  HeapMapConfig config;
  config.on_phase_change = false;
  config.on_peak = true;
  HeapMapRecorder::Global().Arm(config);
  SimDevice device(256 * MiB);
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  ASSERT_NE(alloc, nullptr);

  const uint64_t a = alloc->Malloc(8 * MiB).value();
  const uint64_t b = alloc->Malloc(16 * MiB).value();
  ASSERT_TRUE(alloc->Free(a));  // descend from the 24 MiB peak -> exact-peak frame
  const uint64_t c = alloc->Malloc(8 * MiB).value();
  ASSERT_TRUE(alloc->Free(c));  // back at 24 MiB, not above: no second frame
  ASSERT_TRUE(alloc->Free(b));

  std::vector<HeapSnapshot> peaks;
  for (const HeapSnapshot& s : HeapMapRecorder::Global().Drain()) {
    if (s.trigger == HeapTrigger::kPeak && s.allocated == alloc->stats().allocated_peak) {
      peaks.push_back(s);
    }
  }
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].allocated, 24 * MiB);
  EXPECT_EQ(peaks[0].blocks.size(), 2u);  // both blocks still live in the frame
}

// An OOM captures the address space at the instant of failure, with the failed size on the
// frame — even when ordinary snapshots have exhausted the per-allocator cap (the urgent
// reserve must admit it).
TEST_F(HeapMapTest, OomSnapshotSurvivesExhaustedCap) {
  telemetry::SetEnabled(true);
  HeapMapConfig config;
  config.on_phase_change = false;
  config.on_peak = false;
  config.every_n_ops = 1;
  config.max_snapshots_per_allocator = 2;
  HeapMapRecorder::Global().Arm(config);
  SimDevice device(64 * MiB);
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  ASSERT_NE(alloc, nullptr);

  const uint64_t a = alloc->Malloc(40 * MiB).value();
  for (int i = 0; i < 6; ++i) {
    const uint64_t x = alloc->Malloc(1 * MiB).value();
    ASSERT_TRUE(alloc->Free(x));  // every-op snapshots burn the cap of 2
  }
  EXPECT_FALSE(alloc->Malloc(40 * MiB).has_value());
  ASSERT_TRUE(alloc->Free(a));

  std::vector<HeapSnapshot> timeline = HeapMapRecorder::Global().Drain();
  const HeapSnapshot* oom = nullptr;
  size_t ordinary = 0;
  for (const HeapSnapshot& s : timeline) {
    if (s.trigger == HeapTrigger::kOom) {
      oom = &s;
    } else {
      ++ordinary;
    }
  }
  EXPECT_EQ(ordinary, 2u);  // the cap held for every-N frames
  ASSERT_NE(oom, nullptr);
  EXPECT_EQ(oom->failed_size, 40 * MiB);
  EXPECT_EQ(oom->allocated, 40 * MiB);
  EXPECT_GE(oom->num_oom, 1u);
}

// Phase-boundary trigger: the first tagged op establishes a baseline silently; each later
// phase change fires one frame tagged with the op's context.
TEST_F(HeapMapTest, PhaseChangeTriggersOncePerBoundary) {
  telemetry::SetEnabled(true);
  HeapMapConfig config;
  config.on_peak = false;
  HeapMapRecorder::Global().Arm(config);
  SimDevice device(64 * MiB);
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  ASSERT_NE(alloc, nullptr);

  RequestContext ctx;
  ctx.phase = 3;
  alloc->Malloc(1 * MiB, ctx);   // baseline, no frame
  alloc->Malloc(1 * MiB, ctx);   // same phase, no frame
  ctx.phase = 4;
  ctx.tenant = 7;
  alloc->Malloc(1 * MiB, ctx);   // boundary -> one frame
  alloc->Malloc(1 * MiB, ctx);   // same phase, no frame

  std::vector<HeapSnapshot> timeline = HeapMapRecorder::Global().Drain();
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0].trigger, HeapTrigger::kPhaseChange);
  EXPECT_EQ(timeline[0].blocks.size(), 3u);
  // The boundary op's block carries its request context into the frame.
  bool tagged = false;
  for (const auto& block : timeline[0].blocks) {
    if (block.phase == 4 && block.tenant == 7) tagged = true;
  }
  EXPECT_TRUE(tagged);
}

// The rollup picks each label's peak-allocated frame (not the emptiest one) and honors the
// prefer-filter so a profiling pass's native allocator stays out of a stalloc run's table.
TEST_F(HeapMapTest, RunAttributionPrefersPeakFrameAndLabel) {
  auto make = [](const std::string& label, uint64_t seq, uint64_t allocated, uint64_t gap_bytes,
                 const std::string& group) {
    HeapSnapshot s;
    s.allocator = label;
    s.seq = seq;
    s.allocated = allocated;
    s.free_bytes = gap_bytes;
    FragAttributionRow row;
    row.size_group = group;
    row.bytes = gap_bytes;
    row.gaps = 1;
    s.attribution.push_back(row);
    return s;
  };
  // (label, seq)-sorted, as Drain() emits: the near-empty frame has far more free bytes, but
  // the peak frame (allocated=200) is the one that explains fragmentation at pressure.
  std::vector<HeapSnapshot> timeline;
  timeline.push_back(make("native", 0, 500, 999, "64K-256K"));
  timeline.push_back(make("stalloc", 0, 10, 5000, "idle"));
  timeline.push_back(make("stalloc", 1, 200, 40, "1M-4M"));

  std::vector<FragAttributionRow> rows = telemetry::RunAttribution(timeline, "stalloc");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size_group, "1M-4M");
  EXPECT_EQ(rows[0].bytes, 40u);

  // No label matches the preference -> every label contributes its peak frame.
  rows = telemetry::RunAttribution(timeline, "no-such-allocator");
  uint64_t total = 0;
  for (const FragAttributionRow& row : rows) total += row.bytes;
  EXPECT_EQ(total, 999u + 40u);
}

// === Determinism: the heap map must not perturb the simulator, and must itself be ===
// === bit-identical at any worker count (the observability layer's golden contract) ===

ClusterWorkloadConfig GoldenWorkload() {
  // Mirrors sharded_fleet_test's SmallMixedWorkload — the pinned serial golden digest below
  // is the same value pinned there; update both together or not at all.
  ClusterWorkloadConfig config;
  config.num_jobs = 6;
  config.train_fraction = 0.5;
  config.mean_interarrival = 800;
  config.micro_batches = {1, 2};
  config.num_microbatches = 2;
  config.max_pp = 2;
  config.min_iterations = 1;
  config.max_iterations = 2;
  config.serve_requests = 12;
  config.kv_budget_bytes = 1 * GiB;
  return config;
}

std::string SerializeTimeline(const std::vector<HeapSnapshot>& timeline) {
  std::string out;
  for (const HeapSnapshot& s : timeline) {
    out += ToJson(s).Dump(0);
    out += '\n';
  }
  return out;
}

TEST_F(HeapMapTest, ClusterTimelineBitIdenticalAcrossWorkerCounts) {
  const auto jobs = GenerateClusterWorkload(GoldenWorkload(), 21);
  FleetConfig fleet;
  fleet.device_capacities = {16 * GiB, 16 * GiB};
  fleet.policy = SchedulerPolicy::kFirstFit;
  fleet.allocator = AllocatorKind::kCaching;

  telemetry::SetEnabled(true);
  HeapMapRecorder::Global().Arm(HeapMapConfig{});

  fleet.workers = 0;
  const std::string serial_digest = RunCluster(fleet, jobs).Digest();
  EXPECT_EQ(serial_digest, "d6986ffe96219217") << "heap map armed moved the golden digest";
  const std::vector<HeapSnapshot> serial_timeline = HeapMapRecorder::Global().Drain();
  ASSERT_FALSE(serial_timeline.empty()) << "armed cluster run recorded no snapshots";
  const std::string serial_bytes = SerializeTimeline(serial_timeline);

  // Fleet devices must be disambiguated in the frame labels.
  bool per_device = false;
  for (const HeapSnapshot& s : serial_timeline) {
    if (s.allocator.find("@dev") != std::string::npos) per_device = true;
  }
  EXPECT_TRUE(per_device);

  for (int workers : {2, 8}) {
    fleet.workers = workers;
    EXPECT_EQ(RunCluster(fleet, jobs).Digest(), serial_digest)
        << "digest moved with heap map armed at workers=" << workers;
    EXPECT_EQ(SerializeTimeline(HeapMapRecorder::Global().Drain()), serial_bytes)
        << "heap timeline not bit-identical at workers=" << workers;
  }
}

#endif  // STALLOC_TELEMETRY

}  // namespace
}  // namespace stalloc
