// Coverage for src/cluster/cluster_workload.*: seeded generation of mixed train+serve job
// queues — determinism, ordering, shape ranges.

#include "src/cluster/cluster_workload.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace stalloc {
namespace {

ClusterWorkloadConfig SmallConfig() {
  ClusterWorkloadConfig config;
  config.num_jobs = 16;
  config.train_fraction = 0.5;
  config.mean_interarrival = 500;
  config.micro_batches = {1, 2};
  config.num_microbatches = 2;
  config.serve_requests = 8;
  return config;
}

TEST(ClusterWorkload, DeterministicPerSeed) {
  const auto a = GenerateClusterWorkload(SmallConfig(), 7);
  const auto b = GenerateClusterWorkload(SmallConfig(), 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].Describe(), b[i].Describe());
  }
  // A different seed must actually change the queue.
  const auto c = GenerateClusterWorkload(SmallConfig(), 8);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].submit_time != c[i].submit_time || a[i].type != c[i].type;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ClusterWorkload, SortedDenseAndShaped) {
  const auto jobs = GenerateClusterWorkload(SmallConfig(), 3);
  ASSERT_EQ(jobs.size(), 16u);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
    if (i > 0) {
      EXPECT_LE(jobs[i - 1].submit_time, jobs[i].submit_time);
    }
    if (jobs[i].type == ClusterJobType::kTraining) {
      EXPECT_GE(jobs[i].train.parallel.pp, 1);
      EXPECT_LE(jobs[i].train.parallel.pp, 2);
      EXPECT_GE(jobs[i].iterations, 1);
      EXPECT_LE(jobs[i].iterations, 3);
      EXPECT_EQ(jobs[i].ranks(), jobs[i].train.parallel.pp);
    } else {
      EXPECT_EQ(jobs[i].ranks(), 1);
      EXPECT_EQ(jobs[i].scenario.num_requests, 8u);
      EXPECT_EQ(jobs[i].engine.kv_budget_bytes, SmallConfig().kv_budget_bytes);
    }
  }
}

TEST(ClusterWorkload, MixContainsBothSpecies) {
  const auto jobs = GenerateClusterWorkload(SmallConfig(), 11);
  std::set<ClusterJobType> types;
  for (const ClusterJob& job : jobs) {
    types.insert(job.type);
  }
  EXPECT_EQ(types.size(), 2u);
}

TEST(ClusterWorkload, FractionExtremesPinTheSpecies) {
  ClusterWorkloadConfig config = SmallConfig();
  config.train_fraction = 1.0;
  for (const ClusterJob& job : GenerateClusterWorkload(config, 5)) {
    EXPECT_EQ(job.type, ClusterJobType::kTraining);
  }
  config.train_fraction = 0.0;
  for (const ClusterJob& job : GenerateClusterWorkload(config, 5)) {
    EXPECT_EQ(job.type, ClusterJobType::kServing);
  }
}

TEST(ClusterWorkload, MinInterarrivalZeroProducesTotallyOrderedTies) {
  ClusterWorkloadConfig config = SmallConfig();
  config.num_jobs = 64;
  config.mean_interarrival = 1;
  config.min_interarrival = 0;
  const auto jobs = GenerateClusterWorkload(config, 13);
  size_t ties = 0;
  for (size_t i = 1; i < jobs.size(); ++i) {
    // (submit_time, id) stays a strict total order even when ticks collide.
    EXPECT_LE(jobs[i - 1].submit_time, jobs[i].submit_time);
    EXPECT_LT(jobs[i - 1].id, jobs[i].id);
    ties += jobs[i - 1].submit_time == jobs[i].submit_time;
  }
  EXPECT_GT(ties, 0u) << "a near-zero mean with min_interarrival=0 should collide ticks";

  // The default floor of 1 tick keeps every submit time strictly increasing.
  config.min_interarrival = 1;
  const auto spaced = GenerateClusterWorkload(config, 13);
  for (size_t i = 1; i < spaced.size(); ++i) {
    EXPECT_LT(spaced[i - 1].submit_time, spaced[i].submit_time);
  }
}

TEST(ClusterWorkload, DiurnalKnobsShapeArrivalsAndDefaultsStayFlat) {
  ClusterWorkloadConfig flat = SmallConfig();
  flat.num_jobs = 200;
  flat.mean_interarrival = 300;

  // amplitude=0 and period=0 are both the flat generator — byte-identical submit times.
  ClusterWorkloadConfig zero_amp = flat;
  zero_amp.diurnal_period = 86400;
  ClusterWorkloadConfig zero_period = flat;
  zero_period.diurnal_amplitude = 0.8;
  const auto base = GenerateClusterWorkload(flat, 17);
  const auto a = GenerateClusterWorkload(zero_amp, 17);
  const auto b = GenerateClusterWorkload(zero_period, 17);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, base[i].submit_time) << i;
    EXPECT_EQ(b[i].submit_time, base[i].submit_time) << i;
  }

  // With a real diurnal wave the peak half-period must pack more arrivals than the trough. The
  // first half of each day has rate >= base (sin >= 0), the second half rate <= base.
  ClusterWorkloadConfig diurnal = flat;
  diurnal.diurnal_amplitude = 0.9;
  diurnal.diurnal_period = 40000;
  const auto shaped = GenerateClusterWorkload(diurnal, 17);
  size_t peak_half = 0, trough_half = 0;
  for (const ClusterJob& job : shaped) {
    (job.submit_time % diurnal.diurnal_period < diurnal.diurnal_period / 2 ? peak_half
                                                                           : trough_half)++;
  }
  EXPECT_GT(peak_half, trough_half * 2)
      << "peak half-days should dominate: " << peak_half << " vs " << trough_half;
  // Still deterministic per seed and sorted.
  const auto again = GenerateClusterWorkload(diurnal, 17);
  for (size_t i = 0; i < shaped.size(); ++i) {
    EXPECT_EQ(again[i].submit_time, shaped[i].submit_time);
    if (i > 0) {
      EXPECT_LE(shaped[i - 1].submit_time, shaped[i].submit_time);
    }
  }
}

TEST(ClusterWorkload, DescribeNamesTheShape) {
  ClusterWorkloadConfig config = SmallConfig();
  config.train_fraction = 1.0;
  const auto jobs = GenerateClusterWorkload(config, 2);
  ASSERT_FALSE(jobs.empty());
  EXPECT_NE(jobs[0].Describe().find("train[gpt2"), std::string::npos);
}

}  // namespace
}  // namespace stalloc
