// Coverage for src/cluster/cluster_workload.*: seeded generation of mixed train+serve job
// queues — determinism, ordering, shape ranges.

#include "src/cluster/cluster_workload.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace stalloc {
namespace {

ClusterWorkloadConfig SmallConfig() {
  ClusterWorkloadConfig config;
  config.num_jobs = 16;
  config.train_fraction = 0.5;
  config.mean_interarrival = 500;
  config.micro_batches = {1, 2};
  config.num_microbatches = 2;
  config.serve_requests = 8;
  return config;
}

TEST(ClusterWorkload, DeterministicPerSeed) {
  const auto a = GenerateClusterWorkload(SmallConfig(), 7);
  const auto b = GenerateClusterWorkload(SmallConfig(), 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].Describe(), b[i].Describe());
  }
  // A different seed must actually change the queue.
  const auto c = GenerateClusterWorkload(SmallConfig(), 8);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].submit_time != c[i].submit_time || a[i].type != c[i].type;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ClusterWorkload, SortedDenseAndShaped) {
  const auto jobs = GenerateClusterWorkload(SmallConfig(), 3);
  ASSERT_EQ(jobs.size(), 16u);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
    if (i > 0) {
      EXPECT_LE(jobs[i - 1].submit_time, jobs[i].submit_time);
    }
    if (jobs[i].type == ClusterJobType::kTraining) {
      EXPECT_GE(jobs[i].train.parallel.pp, 1);
      EXPECT_LE(jobs[i].train.parallel.pp, 2);
      EXPECT_GE(jobs[i].iterations, 1);
      EXPECT_LE(jobs[i].iterations, 3);
      EXPECT_EQ(jobs[i].ranks(), jobs[i].train.parallel.pp);
    } else {
      EXPECT_EQ(jobs[i].ranks(), 1);
      EXPECT_EQ(jobs[i].scenario.num_requests, 8u);
      EXPECT_EQ(jobs[i].engine.kv_budget_bytes, SmallConfig().kv_budget_bytes);
    }
  }
}

TEST(ClusterWorkload, MixContainsBothSpecies) {
  const auto jobs = GenerateClusterWorkload(SmallConfig(), 11);
  std::set<ClusterJobType> types;
  for (const ClusterJob& job : jobs) {
    types.insert(job.type);
  }
  EXPECT_EQ(types.size(), 2u);
}

TEST(ClusterWorkload, FractionExtremesPinTheSpecies) {
  ClusterWorkloadConfig config = SmallConfig();
  config.train_fraction = 1.0;
  for (const ClusterJob& job : GenerateClusterWorkload(config, 5)) {
    EXPECT_EQ(job.type, ClusterJobType::kTraining);
  }
  config.train_fraction = 0.0;
  for (const ClusterJob& job : GenerateClusterWorkload(config, 5)) {
    EXPECT_EQ(job.type, ClusterJobType::kServing);
  }
}

TEST(ClusterWorkload, DescribeNamesTheShape) {
  ClusterWorkloadConfig config = SmallConfig();
  config.train_fraction = 1.0;
  const auto jobs = GenerateClusterWorkload(config, 2);
  ASSERT_FALSE(jobs.empty());
  EXPECT_NE(jobs[0].Describe().find("train[gpt2"), std::string::npos);
}

}  // namespace
}  // namespace stalloc
