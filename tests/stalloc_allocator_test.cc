#include "src/core/stalloc_allocator.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"
#include "src/driver/replay.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

// Generous capacity: end-to-end tests exercise correctness, not OOM behaviour, and a 7B-class
// model without ZeRO needs >60 GiB of persistent state per rank.
constexpr uint64_t kCapacity = 8 * GiB;
constexpr uint64_t kLargeCapacity = 256 * GiB;

// Builds a tiny hand-made plan: two sequential 1 MiB requests sharing one slot, one 2 MiB
// request above them.
StaticPlan TinyPlan() {
  StaticPlan plan;
  MemoryEvent a;
  a.id = 0;
  a.size = 1 * MiB;
  a.ts = 0;
  a.te = 10;
  MemoryEvent b = a;
  b.id = 1;
  b.ts = 10;
  b.te = 20;
  MemoryEvent c;
  c.id = 2;
  c.size = 2 * MiB;
  c.ts = 0;
  c.te = 20;
  plan.decisions.push_back({a, 0, 1 * MiB});
  plan.decisions.push_back({c, 1 * MiB, 2 * MiB});
  plan.decisions.push_back({b, 0, 1 * MiB});
  std::sort(plan.decisions.begin(), plan.decisions.end(),
            [](const PlanDecision& x, const PlanDecision& y) { return x.event.ts < y.event.ts; });
  plan.pool_size = 3 * MiB;
  plan.lower_bound = 3 * MiB;
  return plan;
}

TEST(STAllocAllocator, ServesPlannedAddressesInOrder) {
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, TinyPlan(), DynamicReusableSpace{});
  ASSERT_TRUE(alloc.Init());

  auto a = alloc.Malloc(1 * MiB);
  auto c = alloc.Malloc(2 * MiB);
  ASSERT_TRUE(a.has_value() && c.has_value());
  EXPECT_EQ(*c, *a + 1 * MiB);  // planned layout
  alloc.Free(*a);
  auto b = alloc.Malloc(1 * MiB);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, *a);  // b reuses a's slot per the plan
  EXPECT_EQ(alloc.breakdown().static_hits, 3u);
  EXPECT_EQ(alloc.breakdown().static_mismatches, 0u);
  EXPECT_EQ(alloc.ReservedBytes(), 3 * MiB);  // exactly the pool, no fallback
  alloc.Free(*b);
  alloc.Free(*c);
}

TEST(STAllocAllocator, MatcherToleratesReordering) {
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, TinyPlan(), DynamicReusableSpace{});
  ASSERT_TRUE(alloc.Init());
  // The 2 MiB request arrives before the first 1 MiB one: window scan still matches both.
  auto c = alloc.Malloc(2 * MiB);
  auto a = alloc.Malloc(1 * MiB);
  ASSERT_TRUE(a.has_value() && c.has_value());
  EXPECT_EQ(alloc.breakdown().static_hits, 2u);
  alloc.Free(*a);
  alloc.Free(*c);
}

TEST(STAllocAllocator, MismatchFallsBackToCaching) {
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, TinyPlan(), DynamicReusableSpace{});
  ASSERT_TRUE(alloc.Init());
  // 5 MiB was never planned: must be served by the fallback, not crash.
  auto x = alloc.Malloc(5 * MiB);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(alloc.breakdown().static_mismatches, 1u);
  EXPECT_GT(alloc.breakdown().fallback_bytes, 0u);
  EXPECT_GT(alloc.ReservedBytes(), 3 * MiB);  // pool + fallback segment
  EXPECT_TRUE(alloc.Free(*x));
}

TEST(STAllocAllocator, InitFailsWhenPoolExceedsCapacity) {
  SimDevice dev(2 * MiB);
  STAllocAllocator alloc(&dev, TinyPlan(), DynamicReusableSpace{});
  EXPECT_FALSE(alloc.Init());
}

TEST(STAllocAllocator, EmptyPlanServesEverythingViaFallback) {
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, StaticPlan{}, DynamicReusableSpace{});
  ASSERT_TRUE(alloc.Init());
  auto x = alloc.Malloc(1 * MiB);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(alloc.Free(*x));
}

TEST(STAllocAllocator, EndIterationResetsMatcher) {
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, TinyPlan(), DynamicReusableSpace{});
  ASSERT_TRUE(alloc.Init());
  auto a = alloc.Malloc(1 * MiB);
  auto c = alloc.Malloc(2 * MiB);
  alloc.Free(*a);
  auto b = alloc.Malloc(1 * MiB);
  alloc.Free(*b);
  alloc.Free(*c);
  alloc.EndIteration();
  // Next iteration: same sequence hits the plan again.
  auto a2 = alloc.Malloc(1 * MiB);
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(*a2, *a);
  EXPECT_EQ(alloc.breakdown().static_hits, 4u);
  alloc.Free(*a2);
}

// Dynamic-path test with a hand-made reusable region.
TEST(STAllocAllocator, DynamicReuseServesFromPool) {
  StaticPlan plan = TinyPlan();
  DynamicReusableSpace space;
  LayerId ls = 0;
  LayerId le = 1;
  IntervalSet region;
  region.Insert(0, 3 * MiB);  // whole pool reusable for this group
  space.regions.emplace(std::make_pair(ls, le), region);
  space.expected_le[ls] = {le};

  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, plan, space);
  ASSERT_TRUE(alloc.Init());

  RequestContext ctx;
  ctx.dyn = true;
  ctx.layer = ls;
  auto x = alloc.Malloc(512 * KiB, ctx);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(alloc.breakdown().dynamic_reuse_hits, 1u);
  EXPECT_EQ(alloc.breakdown().dynamic_fallbacks, 0u);
  EXPECT_EQ(alloc.ReservedBytes(), 3 * MiB);  // no fallback reservation
  EXPECT_TRUE(alloc.Free(*x));
}

TEST(STAllocAllocator, DynamicWithoutRegionFallsBack) {
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, TinyPlan(), DynamicReusableSpace{});
  ASSERT_TRUE(alloc.Init());
  RequestContext ctx;
  ctx.dyn = true;
  ctx.layer = 7;  // unknown layer
  auto x = alloc.Malloc(512 * KiB, ctx);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(alloc.breakdown().dynamic_fallbacks, 1u);
  EXPECT_TRUE(alloc.Free(*x));
}

TEST(STAllocAllocator, NoReuseAblationAlwaysFallsBack) {
  StaticPlan plan = TinyPlan();
  DynamicReusableSpace space;
  IntervalSet region;
  region.Insert(0, 3 * MiB);
  space.regions.emplace(std::make_pair(0, 1), region);
  space.expected_le[0] = {1};

  STAllocConfig config;
  config.enable_dynamic_reuse = false;
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, plan, space, config);
  ASSERT_TRUE(alloc.Init());
  RequestContext ctx;
  ctx.dyn = true;
  ctx.layer = 0;
  auto x = alloc.Malloc(512 * KiB, ctx);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(alloc.breakdown().dynamic_reuse_hits, 0u);
  EXPECT_EQ(alloc.breakdown().dynamic_fallbacks, 1u);
  EXPECT_TRUE(alloc.Free(*x));
}

// End-to-end: profile -> plan -> replay on dense and MoE workloads; static hit rate must be
// near-perfect and memory efficiency above the caching baseline.
class STAllocEndToEndTest : public ::testing::TestWithParam<const char*> {};

TEST_P(STAllocEndToEndTest, ReplayHitsPlan) {
  ModelConfig model = ModelByName(GetParam());
  TrainConfig c;
  c.parallel.pp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 2;
  c.opt.recompute = RecomputeMode::kFull;
  WorkloadBuilder wb(model, c);

  ProfileResult profile = ProfileWorkload(wb, kLargeCapacity, /*iteration_seed=*/1);
  ASSERT_TRUE(profile.feasible);
  SynthesisResult synthesis = SynthesizePlan(profile.trace);

  SimDevice dev(kLargeCapacity);
  STAllocAllocator alloc(&dev, synthesis.plan, synthesis.dyn_space);
  ASSERT_TRUE(alloc.Init());
  // Replay a *different* iteration (seed 2): static structure identical, dynamic sizes differ.
  Trace run = wb.Build(2);
  ReplayResult replay = ReplayTrace(run, &alloc);
  ASSERT_FALSE(replay.oom);

  const auto& bd = alloc.breakdown();
  EXPECT_EQ(bd.static_mismatches, 0u) << "static requests must all match the plan";
  EXPECT_GT(bd.static_hits, 0u);
  EXPECT_GT(replay.memory_efficiency, 0.90);
  if (model.moe.enabled()) {
    EXPECT_GT(bd.dynamic_reuse_hits + bd.dynamic_fallbacks, 0u);
    EXPECT_GT(bd.dynamic_reuse_hits, 0u) << "recompute leaves idle space; reuse must trigger";
  }
}

INSTANTIATE_TEST_SUITE_P(Models, STAllocEndToEndTest,
                         ::testing::Values("gpt2", "llama2-7b", "qwen1.5-moe"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace stalloc
