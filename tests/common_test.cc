#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace stalloc {
namespace {

TEST(Units, AlignUp) {
  EXPECT_EQ(AlignUp(0, 512), 0u);
  EXPECT_EQ(AlignUp(1, 512), 512u);
  EXPECT_EQ(AlignUp(512, 512), 512u);
  EXPECT_EQ(AlignUp(513, 512), 1024u);
  EXPECT_EQ(AlignUp(3 * MiB - 1, 2 * MiB), 4 * MiB);
}

TEST(Units, AlignDown) {
  EXPECT_EQ(AlignDown(0, 512), 0u);
  EXPECT_EQ(AlignDown(511, 512), 0u);
  EXPECT_EQ(AlignDown(512, 512), 512u);
  EXPECT_EQ(AlignDown(1023, 512), 512u);
}

TEST(Units, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ull << 40));
  EXPECT_FALSE(IsPowerOfTwo((1ull << 40) + 1));
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(100), "100 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * MiB), "3.00 MiB");
  EXPECT_EQ(FormatBytes(5 * GiB + 512 * MiB), "5.50 GiB");
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool lo_hit = false;
  bool hi_hit = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextInRange(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    lo_hit |= v == 3;
    hi_hit |= v == 7;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SampleIndexFollowsWeights) {
  Rng rng(21);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    ++counts[rng.SampleIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);  // 3x the weight
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.6);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "bbbb"});
  t.AddRow({"xxxxx", "y"});
  const std::string s = t.ToString();
  // Header, rule, one row.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
  EXPECT_NE(s.find("xxxxx"), std::string::npos);
}

TEST(StrFormat, Formats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f%%", 99.555), "99.56%");
}

}  // namespace
}  // namespace stalloc
