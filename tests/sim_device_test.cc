#include "src/gpu/sim_device.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace stalloc {
namespace {

TEST(SimDevice, MallocFreeRoundtrip) {
  SimDevice dev(1 * GiB);
  auto a = dev.DevMalloc(100 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(dev.physical_used(), AlignUp(100 * MiB, SimDevice::kMallocAlign));
  EXPECT_EQ(dev.DevFree(*a), DeviceStatus::kOk);
  EXPECT_EQ(dev.physical_used(), 0u);
  EXPECT_EQ(dev.live_classic_allocs(), 0u);
}

TEST(SimDevice, MallocAlignsTo512) {
  SimDevice dev(1 * GiB);
  auto a = dev.DevMalloc(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a % SimDevice::kMallocAlign, 0u);
  EXPECT_EQ(dev.physical_used(), 512u);
  dev.DevFree(*a);
}

TEST(SimDevice, MallocZeroFails) {
  SimDevice dev(1 * GiB);
  EXPECT_FALSE(dev.DevMalloc(0).has_value());
}

TEST(SimDevice, OomWhenCapacityExceeded) {
  SimDevice dev(100 * MiB);
  auto a = dev.DevMalloc(60 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(dev.DevMalloc(60 * MiB).has_value());
  dev.DevFree(*a);
  EXPECT_TRUE(dev.DevMalloc(60 * MiB).has_value());
}

TEST(SimDevice, DistinctAllocationsDoNotOverlap) {
  SimDevice dev(1 * GiB);
  auto a = dev.DevMalloc(10 * MiB);
  auto b = dev.DevMalloc(10 * MiB);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_NE(*a, *b);
  const uint64_t alo = *a;
  const uint64_t ahi = alo + 10 * MiB;
  const uint64_t blo = *b;
  EXPECT_TRUE(blo >= ahi || blo + 10 * MiB <= alo);
}

TEST(SimDevice, FreeUnknownPointerFails) {
  SimDevice dev(1 * GiB);
  EXPECT_EQ(dev.DevFree(0xdead), DeviceStatus::kInvalidArgument);
}

TEST(SimDevice, PeakTracksHighWaterMark) {
  SimDevice dev(1 * GiB);
  auto a = dev.DevMalloc(100 * MiB);
  auto b = dev.DevMalloc(200 * MiB);
  dev.DevFree(*a);
  dev.DevFree(*b);
  EXPECT_EQ(dev.physical_peak(), 300 * MiB);
  EXPECT_EQ(dev.physical_used(), 0u);
}

TEST(SimDevice, ReserveVaRequiresGranularity) {
  SimDevice dev(1 * GiB);
  EXPECT_FALSE(dev.ReserveVa(SimDevice::kGranularity + 1).has_value());
  EXPECT_TRUE(dev.ReserveVa(SimDevice::kGranularity).has_value());
}

TEST(SimDevice, VaReservationConsumesNoPhysical) {
  SimDevice dev(64 * MiB);
  // Reserve far more virtual space than physical capacity: must succeed.
  auto va = dev.ReserveVa(16 * GiB);
  ASSERT_TRUE(va.has_value());
  EXPECT_EQ(dev.physical_used(), 0u);
  EXPECT_EQ(dev.FreeVa(*va), DeviceStatus::kOk);
}

TEST(SimDevice, MemCreateCountsAgainstCapacity) {
  SimDevice dev(10 * MiB);
  auto h = dev.MemCreate(8 * MiB);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(dev.physical_used(), 8 * MiB);
  EXPECT_FALSE(dev.MemCreate(4 * MiB).has_value());  // over capacity
  EXPECT_EQ(dev.MemRelease(*h), DeviceStatus::kOk);
  EXPECT_EQ(dev.physical_used(), 0u);
}

TEST(SimDevice, MapUnmapLifecycle) {
  SimDevice dev(1 * GiB);
  auto va = dev.ReserveVa(8 * MiB);
  auto h = dev.MemCreate(2 * MiB);
  ASSERT_TRUE(va.has_value() && h.has_value());
  EXPECT_EQ(dev.MemMap(*va, 0, *h), DeviceStatus::kOk);
  // Cannot map the same handle twice.
  EXPECT_EQ(dev.MemMap(*va, 4 * MiB, *h), DeviceStatus::kInvalidArgument);
  // Cannot release while mapped.
  EXPECT_EQ(dev.MemRelease(*h), DeviceStatus::kInvalidArgument);
  // Cannot free the reservation while mapped.
  EXPECT_EQ(dev.FreeVa(*va), DeviceStatus::kInvalidArgument);
  EXPECT_EQ(dev.MemUnmap(*va, 0, 2 * MiB), DeviceStatus::kOk);
  EXPECT_EQ(dev.MemRelease(*h), DeviceStatus::kOk);
  EXPECT_EQ(dev.FreeVa(*va), DeviceStatus::kOk);
}

TEST(SimDevice, MapRejectsOverlap) {
  SimDevice dev(1 * GiB);
  auto va = dev.ReserveVa(8 * MiB);
  auto h1 = dev.MemCreate(4 * MiB);
  auto h2 = dev.MemCreate(4 * MiB);
  EXPECT_EQ(dev.MemMap(*va, 0, *h1), DeviceStatus::kOk);
  EXPECT_EQ(dev.MemMap(*va, 2 * MiB, *h2), DeviceStatus::kInvalidArgument);  // overlaps h1
  EXPECT_EQ(dev.MemMap(*va, 4 * MiB, *h2), DeviceStatus::kOk);
}

TEST(SimDevice, MapRejectsOutOfReservation) {
  SimDevice dev(1 * GiB);
  auto va = dev.ReserveVa(4 * MiB);
  auto h = dev.MemCreate(4 * MiB);
  EXPECT_EQ(dev.MemMap(*va, 2 * MiB, *h), DeviceStatus::kInvalidArgument);
}

TEST(SimDevice, UnmapMustCoverWholeMappings) {
  SimDevice dev(1 * GiB);
  auto va = dev.ReserveVa(8 * MiB);
  auto h = dev.MemCreate(4 * MiB);
  EXPECT_EQ(dev.MemMap(*va, 0, *h), DeviceStatus::kOk);
  EXPECT_EQ(dev.MemUnmap(*va, 0, 2 * MiB), DeviceStatus::kInvalidArgument);  // partial
  EXPECT_EQ(dev.MemUnmap(*va, 0, 4 * MiB), DeviceStatus::kOk);
}

TEST(SimDevice, CostLedgerAccumulates) {
  DeviceCostModel cost;
  cost.cuda_malloc_us = 100;
  cost.cuda_free_us = 50;
  SimDevice dev(1 * GiB, cost);
  auto a = dev.DevMalloc(1 * MiB);
  dev.DevFree(*a);
  EXPECT_EQ(dev.counters().cuda_malloc, 1u);
  EXPECT_EQ(dev.counters().cuda_free, 1u);
  EXPECT_DOUBLE_EQ(dev.counters().total_cost_us, 150.0);
}

TEST(SimDevice, ClassicAndVmmShareCapacity) {
  SimDevice dev(10 * MiB);
  auto a = dev.DevMalloc(6 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(dev.MemCreate(6 * MiB).has_value());
  dev.DevFree(*a);
  EXPECT_TRUE(dev.MemCreate(6 * MiB).has_value());
}

}  // namespace
}  // namespace stalloc
