#include "src/driver/experiment.h"

#include <string>

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/driver/replay.h"
#include "src/trainsim/model_config.h"

namespace stalloc {
namespace {

WorkloadBuilder SmallWorkload(const char* model, const char* tag) {
  TrainConfig base;
  base.parallel.pp = 2;
  base.parallel.dp = 2;
  base.num_microbatches = 4;
  base.micro_batch_size = ModelByName(model).moe.enabled() ? 2 : 4;
  return WorkloadBuilder(ModelByName(model), ApplyConfigTag(base, tag));
}

TEST(Experiment, StallocBeatsCachingOnEfficiency) {
  WorkloadBuilder wb = SmallWorkload("gpt2", "VR");
  ExperimentResult caching = RunExperiment(wb, AllocatorKind::kCaching);
  ExperimentResult stalloc = RunExperiment(wb, AllocatorKind::kSTAlloc);
  ASSERT_FALSE(caching.oom);
  ASSERT_FALSE(stalloc.oom);
  EXPECT_GT(stalloc.memory_efficiency, caching.memory_efficiency);
  EXPECT_LT(stalloc.reserved_peak, caching.reserved_peak);
}

TEST(Experiment, StallocEfficiencyAbove95OnDenseModels) {
  // §9.2: ">95% (up to 100%) memory efficiency in all cases" for dense models.
  for (const char* tag : {"N", "R", "V", "VR", "ZR", "ZOR"}) {
    WorkloadBuilder wb = SmallWorkload("gpt2", tag);
    ExperimentResult r = RunExperiment(wb, AllocatorKind::kSTAlloc);
    ASSERT_FALSE(r.oom) << tag;
    EXPECT_GT(r.memory_efficiency, 0.95) << "config " << tag;
  }
}

TEST(Experiment, NativeAllocatorDefinesFeasibility) {
  WorkloadBuilder wb = SmallWorkload("gpt2", "N");
  ExperimentOptions opt;
  opt.capacity_bytes = 1 * GiB;  // too small for the workload
  ExperimentResult native = RunExperiment(wb, AllocatorKind::kNative, opt);
  EXPECT_TRUE(native.infeasible);
  ExperimentResult st = RunExperiment(wb, AllocatorKind::kSTAlloc, opt);
  EXPECT_TRUE(st.infeasible) << "STAlloc profiling must detect theoretical infeasibility";
}

TEST(Experiment, FragmentationCanCauseOomWhereStallocFits) {
  // Size the device between STAlloc's reserved peak and the caching allocator's: the caching
  // run must OOM while STAlloc completes — the Table 1 effect.
  WorkloadBuilder wb = SmallWorkload("gpt2", "VR");
  ExperimentResult caching_big = RunExperiment(wb, AllocatorKind::kCaching);
  ExperimentResult stalloc_big = RunExperiment(wb, AllocatorKind::kSTAlloc);
  ASSERT_FALSE(caching_big.oom);
  ASSERT_FALSE(stalloc_big.oom);
  ASSERT_LT(stalloc_big.reserved_peak, caching_big.reserved_peak);

  ExperimentOptions tight;
  tight.capacity_bytes = (stalloc_big.reserved_peak + caching_big.reserved_peak) / 2;
  ExperimentResult caching_tight = RunExperiment(wb, AllocatorKind::kCaching, tight);
  ExperimentResult stalloc_tight = RunExperiment(wb, AllocatorKind::kSTAlloc, tight);
  EXPECT_FALSE(stalloc_tight.oom);
  EXPECT_FALSE(stalloc_tight.infeasible);
  // The caching allocator either OOMs or survives by thrashing: repeatedly releasing cached
  // segments and re-allocating them with native API calls (the behaviour that degrades
  // throughput in production). Either way STAlloc is strictly better off.
  if (!caching_tight.oom) {
    EXPECT_GT(caching_tight.device_api_calls, stalloc_tight.device_api_calls);
    EXPECT_LE(caching_tight.reserved_peak, tight.capacity_bytes);
  }
}

TEST(Experiment, MoeBreakdownMatchesFig13Ordering) {
  // Fig. 13: caching <= STAlloc w/o reuse <= full STAlloc in memory efficiency. The MoE model
  // carries ~130 GiB of per-rank persistent state at pp=2 without ZeRO, so give the device
  // ample capacity — this test is about ordering, not OOM.
  WorkloadBuilder wb = SmallWorkload("qwen1.5-moe", "R");
  ExperimentOptions opt;
  opt.capacity_bytes = 256ull * GiB;
  ExperimentResult caching = RunExperiment(wb, AllocatorKind::kCaching, opt);
  ExperimentResult no_reuse = RunExperiment(wb, AllocatorKind::kSTAllocNoReuse, opt);
  ExperimentResult full = RunExperiment(wb, AllocatorKind::kSTAlloc, opt);
  ASSERT_FALSE(caching.oom || no_reuse.oom || full.oom);
  EXPECT_GE(no_reuse.memory_efficiency, caching.memory_efficiency - 0.02);
  EXPECT_GE(full.memory_efficiency, no_reuse.memory_efficiency - 1e-9);
  EXPECT_LE(full.reserved_peak, no_reuse.reserved_peak);
}

TEST(Experiment, StallocApiCostIsTiny) {
  // §8: one native allocation for the pool; no device API traffic on the hot path.
  WorkloadBuilder wb = SmallWorkload("gpt2", "R");
  ExperimentResult st = RunExperiment(wb, AllocatorKind::kSTAlloc);
  ExperimentResult es = RunExperiment(wb, AllocatorKind::kExpandable);
  ASSERT_FALSE(st.oom || es.oom);
  EXPECT_LT(st.device_api_calls, 64u);
  EXPECT_GT(es.device_api_calls, st.device_api_calls);
}

TEST(Replay, ResultStringFormats) {
  ReplayResult r;
  r.allocated_peak = 100;
  r.reserved_peak = 200;
  r.memory_efficiency = 0.5;
  EXPECT_NE(r.ToString().find("E=50.0%"), std::string::npos);
  r.oom = true;
  EXPECT_NE(r.ToString().find("OOM"), std::string::npos);
}

}  // namespace
}  // namespace stalloc
