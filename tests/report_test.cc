// Json + ReportSink: escaping, ordered emission, numeric formats, schema_version at every
// root, and the file-writing path.

#include "src/api/report.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace stalloc {
namespace {

TEST(Json, ScalarsAndOrderedObjects) {
  Json j = Json::Object();
  j.Set("b", 1);
  j.Set("a", 2u);
  j.Set("c", true);
  j.Set("d", nullptr);
  j.Set("e", "text");
  j.Set("f", 1.5);
  EXPECT_EQ(j.Dump(0), "{\"b\": 1, \"a\": 2, \"c\": true, \"d\": null, \"e\": \"text\", "
                       "\"f\": 1.5}\n");
}

TEST(Json, RepeatedKeyOverwritesInPlace) {
  Json j = Json::Object();
  j.Set("a", 1);
  j.Set("b", 2);
  j.Set("a", 3);
  EXPECT_EQ(j.Dump(0), "{\"a\": 3, \"b\": 2}\n");
  EXPECT_EQ(j.size(), 2u);
}

TEST(Json, ArraysAndNesting) {
  Json arr = Json::Array();
  arr.Add(1);
  arr.Add("two");
  Json obj = Json::Object();
  obj.Set("k", Json::Array());
  arr.Add(std::move(obj));
  EXPECT_EQ(arr.Dump(0), "[1, \"two\", {\"k\": []}]\n");
  EXPECT_EQ(arr.size(), 3u);
}

TEST(Json, EscapesControlAndQuoteCharacters) {
  Json j = Json::Object();
  j.Set("s", "a\"b\\c\nd\te\x01");
  EXPECT_EQ(j.Dump(0), "{\"s\": \"a\\\"b\\\\c\\nd\\te\\u0001\"}\n");
}

TEST(Json, LargeUnsignedSurvives) {
  const uint64_t big = 0xFFFFFFFFFFFFFFFFull;
  Json j = Json::Object();
  j.Set("v", big);
  EXPECT_EQ(j.Dump(0), "{\"v\": 18446744073709551615}\n");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  Json j = Json::Object();
  j.Set("v", 1.0 / 0.0);
  EXPECT_EQ(j.Dump(0), "{\"v\": null}\n");
}

TEST(Json, IndentedDumpIsStable) {
  Json j = Json::Object();
  j.Set("a", 1);
  Json arr = Json::Array();
  arr.Add(2);
  j.Set("b", std::move(arr));
  EXPECT_EQ(j.Dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}\n");
}

TEST(ReportSink, RootCarriesBenchAndSchemaVersion) {
  ReportSink sink("mybench", "");
  EXPECT_FALSE(sink.json_enabled());
  sink.Meta("extra", 7);
  EXPECT_EQ(sink.root().Dump(0),
            "{\"bench\": \"mybench\", \"schema_version\": " +
                std::to_string(kReportSchemaVersion) + ", \"extra\": 7}\n");
}

TEST(ReportSink, WritesJsonFile) {
  const std::string path = ::testing::TempDir() + "report_test_out.json";
  {
    ReportSink sink("filetest", path);
    ASSERT_TRUE(sink.json_enabled());
    sink.Meta("value", 42);
    EXPECT_EQ(sink.Finish(), 0);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256] = {0};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  const std::string content(buf, n);
  EXPECT_NE(content.find("\"bench\": \"filetest\""), std::string::npos);
  EXPECT_NE(content.find("\"value\": 42"), std::string::npos);
}

TEST(ReportSink, UnwritablePathReturnsError) {
  ReportSink sink("failtest", "/no/such/dir/out.json");
  EXPECT_EQ(sink.Finish(), 1);
}

TEST(ReportSink, DashRoutesTablesToStderr) {
  ReportSink sink("dashtest", "-");
  EXPECT_EQ(sink.out(), stderr);
  ReportSink plain("plaintest", "");
  EXPECT_EQ(plain.out(), stdout);
}

}  // namespace
}  // namespace stalloc
