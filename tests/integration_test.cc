// Cross-module integration and fault-injection tests: the profiler pipeline, multi-iteration
// runtime behaviour, plan-mismatch robustness, per-stream pool segregation, and replay OOM
// semantics.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/allocators/caching_allocator.h"
#include "src/common/units.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"
#include "src/trace/trace_stats.h"
#include "src/core/stalloc_allocator.h"
#include "src/driver/replay.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

constexpr uint64_t kCapacity = 64 * GiB;

TrainConfig SmallConfig() {
  TrainConfig c;
  c.parallel.pp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 4;
  return c;
}

TEST(Profiler, FeasibleWorkloadProducesTrace) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  ProfileResult r = ProfileWorkload(wb, kCapacity, 1);
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.trace.size(), 0u);
  EXPECT_EQ(r.peak_allocated, PeakAllocated(r.trace));
  EXPECT_GT(r.native_api_calls, r.trace.size());  // one malloc + one free per event
  EXPECT_GT(r.native_api_cost_us, 0.0);
}

TEST(Profiler, DetectsInfeasibleWorkload) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  ProfileResult r = ProfileWorkload(wb, 1 * GiB, 1);
  EXPECT_FALSE(r.feasible);
}

TEST(Replay, OomStopsAtFailingEvent) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  Trace trace = wb.Build(1);
  SimDevice dev(1 * GiB);
  CachingAllocator alloc(&dev);
  ReplayResult r = ReplayTrace(trace, &alloc);
  EXPECT_TRUE(r.oom);
  EXPECT_LT(r.failed_event, trace.size());
  // Cleanup path: everything live was freed, allocator reusable.
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
}

TEST(STAllocIntegration, MultipleIterationsStayPlanned) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  ProfileResult profile = ProfileWorkload(wb, kCapacity, 1);
  ASSERT_TRUE(profile.feasible);
  SynthesisResult synthesis = SynthesizePlan(profile.trace);
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, synthesis.plan, synthesis.dyn_space);
  ASSERT_TRUE(alloc.Init());

  const uint64_t reserved_after_init = alloc.ReservedBytes();
  for (uint64_t iter = 0; iter < 4; ++iter) {
    ReplayResult r = ReplayTrace(wb.Build(10 + iter), &alloc);
    ASSERT_FALSE(r.oom) << "iteration " << iter;
    EXPECT_EQ(alloc.breakdown().static_mismatches, 0u) << "iteration " << iter;
  }
  // Reserved memory never grew beyond the pool: no fallback traffic across iterations.
  EXPECT_EQ(alloc.ReservedBytes(), reserved_after_init);
}

TEST(STAllocIntegration, WrongWorkloadFallsBackInsteadOfCrashing) {
  // Plan synthesized for GPT-2 but the job replays a different config (different sizes): every
  // static request should miss the plan and be absorbed by the caching fallback (§6 robustness).
  WorkloadBuilder planned(Gpt2_345M(), SmallConfig());
  ProfileResult profile = ProfileWorkload(planned, kCapacity, 1);
  SynthesisResult synthesis = SynthesizePlan(profile.trace);

  TrainConfig other_config = SmallConfig();
  other_config.micro_batch_size = 2;  // halves most activation sizes
  WorkloadBuilder actual(Gpt2_345M(), other_config);

  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, synthesis.plan, synthesis.dyn_space);
  ASSERT_TRUE(alloc.Init());
  ReplayResult r = ReplayTrace(actual.Build(2), &alloc);
  EXPECT_FALSE(r.oom);
  EXPECT_GT(alloc.breakdown().static_mismatches, 0u);
  EXPECT_GT(alloc.breakdown().fallback_bytes, 0u);
}

TEST(STAllocIntegration, PartialMismatchKeepsRemainingPlanUsable) {
  // Inject a foreign allocation mid-stream: later planned requests must still hit the plan.
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  ProfileResult profile = ProfileWorkload(wb, kCapacity, 1);
  SynthesisResult synthesis = SynthesizePlan(profile.trace);
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, synthesis.plan, synthesis.dyn_space);
  ASSERT_TRUE(alloc.Init());

  // A request size the plan has never seen.
  auto foreign = alloc.Malloc(123456789);
  ASSERT_TRUE(foreign.has_value());
  EXPECT_EQ(alloc.breakdown().static_mismatches, 1u);

  ReplayResult r = ReplayTrace(wb.Build(2), &alloc);
  EXPECT_FALSE(r.oom);
  EXPECT_GT(alloc.breakdown().static_hits, 0u);
  EXPECT_TRUE(alloc.Free(*foreign));
}

TEST(CachingStreams, FreedBlocksAreStreamPrivate) {
  SimDevice dev(8 * GiB);
  CachingAllocator alloc(&dev);
  RequestContext s0;
  auto a = alloc.Malloc(4 * MiB, s0);
  ASSERT_TRUE(a.has_value());
  alloc.Free(*a);
  // Same request from another stream must NOT reuse the cached block (PyTorch semantics).
  RequestContext s1;
  s1.stream = kDpCommStream;
  auto b = alloc.Malloc(4 * MiB, s1);
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  // Back on stream 0, the cached block is reused.
  auto c = alloc.Malloc(4 * MiB, s0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*a, *c);
  alloc.Free(*b);
  alloc.Free(*c);
}

TEST(CachingStreams, PerStreamPoolsInflateReservation) {
  // The same request pattern alternating over two streams reserves roughly twice the memory of
  // the single-stream case — the fragmentation effect STAlloc's stream-agnostic plan avoids.
  auto run = [](bool two_streams) {
    SimDevice dev(8 * GiB);
    CachingAllocator alloc(&dev);
    for (int i = 0; i < 8; ++i) {
      RequestContext ctx;
      ctx.stream = two_streams && (i % 2 == 1) ? kDpCommStream : kComputeStream;
      auto a = alloc.Malloc(16 * MiB, ctx);
      EXPECT_TRUE(a.has_value());
      alloc.Free(*a);
    }
    return alloc.ReservedBytes();
  };
  EXPECT_GT(run(true), run(false));
}

TEST(WorkloadStreams, CommTrafficIsTagged) {
  TrainConfig c = SmallConfig();
  c.parallel.dp = 2;
  c.opt.offload = true;
  WorkloadBuilder wb(Gpt2_345M(), c);
  Trace trace = wb.Build(1);
  bool saw_p2p = false;
  bool saw_dp = false;
  bool saw_offload = false;
  for (const auto& e : trace.events()) {
    saw_p2p |= e.stream == kP2pStream;
    saw_dp |= e.stream == kDpCommStream;
    saw_offload |= e.stream == kOffloadStream;
  }
  EXPECT_TRUE(saw_p2p);
  EXPECT_TRUE(saw_dp);
  EXPECT_TRUE(saw_offload);
}

TEST(WorkloadStreams, MoeA2aIsTagged) {
  TrainConfig c = SmallConfig();
  c.parallel.ep = 4;
  c.micro_batch_size = 2;
  WorkloadBuilder wb(Qwen15_MoE_A27B(), c);
  Trace trace = wb.Build(1);
  bool saw_a2a = false;
  for (const auto& e : trace.events()) {
    saw_a2a |= e.stream == kA2aStream;
  }
  EXPECT_TRUE(saw_a2a);
}

}  // namespace
}  // namespace stalloc
