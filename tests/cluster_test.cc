// Coverage for src/cluster/scheduler.* and src/cluster/fleet.*: placement policies on
// hand-built device views, end-to-end fleet days over mixed workloads, the OOM
// requeue-or-reject discipline, and the plan-aware-vs-first-fit admission split that motivates
// the whole layer (a job first-fit admits and OOMs, plan-aware rejects up front).

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/cluster/scheduler.h"
#include "src/common/units.h"
#include "src/trace/trace_stats.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

DeviceView View(int index, uint64_t capacity, uint64_t claimed, uint64_t used) {
  DeviceView v;
  v.index = index;
  v.capacity = capacity;
  v.claimed = claimed;
  v.physical_used = used;
  return v;
}

// --- scheduler policies on hand-built views ---

TEST(Scheduler, FirstFitPicksLowestIndexWithUnclaimedRoom) {
  auto s = MakeScheduler(SchedulerPolicy::kFirstFit);
  std::vector<DeviceView> views = {View(0, 10 * GiB, 9 * GiB, 0), View(1, 10 * GiB, 2 * GiB, 0),
                                   View(2, 10 * GiB, 0, 0)};
  auto placed = s->Place({4 * GiB}, views);
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(*placed, (std::vector<int>{1}));  // device 0 is too claimed, 1 is first that fits
}

TEST(Scheduler, BestFitUsesLiveTelemetryAndTightestSlack) {
  auto s = MakeScheduler(SchedulerPolicy::kBestFit);
  // Claims say device 1 is full, but live bytes say it is the tightest feasible fit: best-fit
  // schedules on telemetry and overcommits it anyway.
  std::vector<DeviceView> views = {View(0, 16 * GiB, 0, 2 * GiB),
                                   View(1, 16 * GiB, 16 * GiB, 11 * GiB)};
  auto placed = s->Place({4 * GiB}, views);
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(*placed, (std::vector<int>{1}));
}

TEST(Scheduler, PlanAwareBestFitsByClaims) {
  auto s = MakeScheduler(SchedulerPolicy::kPlanAware);
  std::vector<DeviceView> views = {View(0, 16 * GiB, 0, 0), View(1, 16 * GiB, 10 * GiB, 0)};
  auto placed = s->Place({4 * GiB}, views);
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(*placed, (std::vector<int>{1}));  // 6 GiB slack beats 16 GiB slack
}

TEST(Scheduler, MultiRankPlacementUsesDistinctDevices) {
  for (SchedulerPolicy policy : AllSchedulerPolicies()) {
    auto s = MakeScheduler(policy);
    std::vector<DeviceView> views = {View(0, 16 * GiB, 0, 0), View(1, 16 * GiB, 0, 0)};
    auto placed = s->Place({4 * GiB, 4 * GiB}, views);
    ASSERT_TRUE(placed.has_value()) << SchedulerPolicyName(policy);
    EXPECT_NE((*placed)[0], (*placed)[1]) << SchedulerPolicyName(policy);
    // Three ranks over two devices can never be placed.
    EXPECT_FALSE(s->Place({GiB, GiB, GiB}, views).has_value()) << SchedulerPolicyName(policy);
  }
}

TEST(Scheduler, AllOrNothingWhenOneRankCannotFit) {
  auto s = MakeScheduler(SchedulerPolicy::kFirstFit);
  std::vector<DeviceView> views = {View(0, 16 * GiB, 0, 0), View(1, 8 * GiB, 7 * GiB, 0)};
  EXPECT_FALSE(s->Place({4 * GiB, 4 * GiB}, views).has_value());
}

TEST(Scheduler, NamesRoundTrip) {
  for (SchedulerPolicy policy : AllSchedulerPolicies()) {
    EXPECT_EQ(SchedulerPolicyByName(SchedulerPolicyName(policy)), policy);
    EXPECT_EQ(MakeScheduler(policy)->policy(), policy);
  }
}

// --- admission estimates ---

TEST(Scheduler, NaiveTrainingEstimateIgnoresActivations) {
  const ModelConfig model = ModelByName("gpt2");
  TrainConfig small = ApplyConfigTag(TrainConfig{}, "N");
  small.micro_batch_size = 1;
  small.num_microbatches = 2;
  TrainConfig big = small;
  big.micro_batch_size = 8;
  big.num_microbatches = 8;
  // The naive "model states" heuristic does not move with batch shape...
  EXPECT_EQ(NaiveTrainingEstimate(model, small, 0), NaiveTrainingEstimate(model, big, 0));
  // ...but the actual footprint does, which is exactly the admission gap the fleet measures.
  const uint64_t naive = NaiveTrainingEstimate(model, big, 0);
  big.rank = 0;
  const Trace trace = WorkloadBuilder(model, big).Build(1);
  EXPECT_GT(PlanPredictedReservation(trace), naive);
}

TEST(Scheduler, PlanPredictedReservationCoversTheTracePeak) {
  const ModelConfig model = ModelByName("gpt2");
  TrainConfig config = ApplyConfigTag(TrainConfig{}, "R");
  config.micro_batch_size = 2;
  config.num_microbatches = 2;
  const Trace trace = WorkloadBuilder(model, config).Build(3);
  uint64_t worst_phase = 0;
  for (const PhasePeak& p : PhasePeakBreakdown(trace)) {
    worst_phase = std::max(worst_phase, p.peak_live);
  }
  EXPECT_GE(PlanPredictedReservation(trace), worst_phase);
}

// --- fleet end-to-end ---

ClusterWorkloadConfig MixedWorkload() {
  ClusterWorkloadConfig config;
  config.num_jobs = 6;
  config.train_fraction = 0.5;
  config.mean_interarrival = 800;
  config.micro_batches = {1, 2};
  config.num_microbatches = 2;
  config.max_pp = 2;
  config.min_iterations = 1;
  config.max_iterations = 2;
  config.serve_requests = 12;
  config.kv_budget_bytes = 1 * GiB;
  return config;
}

FleetConfig SmallFleet(SchedulerPolicy policy, AllocatorKind kind) {
  FleetConfig fleet;
  fleet.device_capacities = {16 * GiB, 16 * GiB};
  fleet.policy = policy;
  fleet.allocator = kind;
  return fleet;
}

TEST(Fleet, MixedDayCompletesOnEveryPolicy) {
  const auto jobs = GenerateClusterWorkload(MixedWorkload(), 21);
  for (SchedulerPolicy policy : AllSchedulerPolicies()) {
    ClusterResult r = RunCluster(SmallFleet(policy, AllocatorKind::kCaching), jobs);
    EXPECT_EQ(r.num_jobs, jobs.size()) << SchedulerPolicyName(policy);
    EXPECT_EQ(r.completed, jobs.size()) << SchedulerPolicyName(policy);
    EXPECT_EQ(r.oom_events, 0u) << SchedulerPolicyName(policy);
    EXPECT_GT(r.makespan, 0u);
    EXPECT_GT(r.fleet_avg_utilization, 0.0);
    ASSERT_EQ(r.devices.size(), 2u);
    for (const DeviceMetrics& d : r.devices) {
      EXPECT_GT(d.avg_utilization, 0.0);
      EXPECT_LE(d.peak_used, d.capacity);
    }
    for (const JobOutcome& o : r.jobs) {
      EXPECT_EQ(o.status, JobStatus::kCompleted);
      EXPECT_GT(o.actual_peak, 0u);
      EXPECT_GE(o.finish_time, o.admit_time);
      if (o.type == ClusterJobType::kServing) {
        EXPECT_GE(o.slo_attainment, 0.0);
        EXPECT_LE(o.slo_attainment, 1.0);
      }
    }
  }
}

TEST(Fleet, DeterministicForFixedInputs) {
  const auto jobs = GenerateClusterWorkload(MixedWorkload(), 9);
  const FleetConfig fleet = SmallFleet(SchedulerPolicy::kBestFit, AllocatorKind::kCaching);
  ClusterResult a = RunCluster(fleet, jobs);
  ClusterResult b = RunCluster(fleet, jobs);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].admit_time, b.jobs[i].admit_time);
    EXPECT_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time);
    EXPECT_EQ(a.jobs[i].actual_peak, b.jobs[i].actual_peak);
  }
}

TEST(Fleet, RunsOnEveryClusterAllocatorKind) {
  ClusterWorkloadConfig wl = MixedWorkload();
  wl.num_jobs = 3;
  const auto jobs = GenerateClusterWorkload(wl, 4);
  const auto kinds = ClusterAllocatorKinds();
  EXPECT_GE(kinds.size(), 3u);
  for (AllocatorKind kind : kinds) {
    EXPECT_NE(kind, AllocatorKind::kSTAlloc);
    EXPECT_NE(kind, AllocatorKind::kSTAllocNoReuse);
    ClusterResult r = RunCluster(SmallFleet(SchedulerPolicy::kFirstFit, kind), jobs);
    EXPECT_EQ(r.completed + r.rejected_oom + r.rejected_upfront + r.starved, jobs.size())
        << AllocatorKindName(kind);
  }
}

// The acceptance scenario of the cluster layer: a training job whose activation-heavy footprint
// exceeds device capacity. The naive model-size estimate says it fits, so first-fit admits it
// and the job OOMs at runtime (requeue, OOM again, reject). The plan-aware scheduler predicts
// the real reservation from the profiled trace and rejects it up front — no device time wasted.
ClusterJob OversizedTrainingJob() {
  ClusterJob job;
  job.id = 0;
  job.type = ClusterJobType::kTraining;
  job.submit_time = 1;
  job.model = "gpt2";
  job.seed = 5;
  TrainConfig config;
  config.num_microbatches = 8;
  config.micro_batch_size = 8;
  job.train = ApplyConfigTag(config, "N");  // no recompute: ~14 GiB peak vs ~5.5 GiB naive
  job.iterations = 1;
  return job;
}

TEST(Fleet, PlanAwareRejectsUpfrontWhatFirstFitAdmitsIntoOom) {
  const std::vector<ClusterJob> jobs = {OversizedTrainingJob()};
  FleetConfig fleet = SmallFleet(SchedulerPolicy::kFirstFit, AllocatorKind::kCaching);
  fleet.device_capacities = {12 * GiB, 12 * GiB};
  fleet.max_oom_retries = 1;

  ClusterResult first_fit = RunCluster(fleet, jobs);
  EXPECT_EQ(first_fit.admitted, 1u);
  EXPECT_GT(first_fit.oom_events, 0u);
  EXPECT_EQ(first_fit.requeues, 1u);  // one retry, then reject
  EXPECT_EQ(first_fit.rejected_oom, 1u);
  EXPECT_EQ(first_fit.jobs[0].status, JobStatus::kRejectedOom);
  EXPECT_GT(first_fit.jobs[0].actual_peak, first_fit.jobs[0].estimate);

  fleet.policy = SchedulerPolicy::kPlanAware;
  ClusterResult plan_aware = RunCluster(fleet, jobs);
  EXPECT_EQ(plan_aware.admitted, 0u);
  EXPECT_EQ(plan_aware.oom_events, 0u);
  EXPECT_EQ(plan_aware.rejected_upfront, 1u);
  EXPECT_EQ(plan_aware.jobs[0].status, JobStatus::kRejectedUpfront);
  // The plan-predicted estimate exceeds what any 12 GiB device could hold.
  EXPECT_GT(plan_aware.jobs[0].estimate, 12 * GiB);
}

TEST(Fleet, RequeueSucceedsWhenMemoryFreesUp) {
  // Two sequential admissions of the same footprint fit one after the other: the second job
  // waits in the queue (first-fit claims block it) and admits once the first completes.
  ClusterJob a = OversizedTrainingJob();
  a.train.micro_batch_size = 2;
  a.train.num_microbatches = 2;
  ClusterJob b = a;
  b.id = 1;
  b.submit_time = 2;
  b.seed = 6;
  FleetConfig fleet = SmallFleet(SchedulerPolicy::kFirstFit, AllocatorKind::kCaching);
  fleet.device_capacities = {9 * GiB};  // one device: jobs must serialize
  ClusterResult r = RunCluster(fleet, {a, b});
  EXPECT_EQ(r.completed, 2u);
  EXPECT_EQ(r.oom_events, 0u);
  EXPECT_GT(r.jobs[1].queue_wait, 0.0);
  EXPECT_GE(r.queue_wait_p99, r.queue_wait_p50);
}

// Regression for the requeue-after-partial-placement path through the shared OOM-policy
// observer: a two-rank job lands on an asymmetric fleet — rank 0 on a roomy device allocates
// happily, rank 1 on a device whose capacity the naive estimate says suffices (3.4 GiB claimed,
// 5.8 GiB actual) OOMs mid-stream. The whole tenant gang must unwind (including the healthy,
// partially-placed rank 0), release both devices' claims, requeue through the fleet scheduler,
// burn its retry on the same deterministic placement and get rejected — after which a later job
// must still admit and complete on the same devices, proving the unwinds left no stuck claims
// or leaked blocks.
TEST(Fleet, RequeueAfterPartialPlacementUnwindsBothDevices) {
  ClusterJob pipelined;
  pipelined.id = 0;
  pipelined.type = ClusterJobType::kTraining;
  pipelined.submit_time = 1;
  pipelined.model = "gpt2";
  pipelined.seed = 8;
  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 4;
  config.micro_batch_size = 4;
  pipelined.train = ApplyConfigTag(config, "N");  // rank peaks 6.6 / 5.8 GiB vs 3.4 GiB naive
  pipelined.iterations = 1;

  ClusterJob later;  // a job that fits the roomy device, submitted after the rejection settles
  later.id = 1;
  later.type = ClusterJobType::kTraining;
  later.submit_time = 20000;
  later.model = "gpt2";
  later.seed = 3;
  TrainConfig small;
  small.num_microbatches = 2;
  small.micro_batch_size = 1;
  later.train = ApplyConfigTag(small, "N");
  later.iterations = 1;

  FleetConfig fleet = SmallFleet(SchedulerPolicy::kFirstFit, AllocatorKind::kCaching);
  fleet.device_capacities = {16 * GiB, 5 * GiB};
  fleet.max_oom_retries = 1;
  ClusterResult r = RunCluster(fleet, {pipelined, later});

  // Attempt 1: rank 1 OOMs on the 5 GiB device while rank 0 holds live memory on the 16 GiB
  // one; the gang unwinds and requeues. Attempt 2 repeats the placement, OOMs again, and the
  // retry budget rejects the job.
  const JobOutcome& out = r.jobs[0];
  EXPECT_EQ(out.status, JobStatus::kRejectedOom);
  EXPECT_EQ(out.attempts, 2u);
  EXPECT_EQ(out.oom_count, 2);
  EXPECT_EQ(r.requeues, 1u);
  EXPECT_GT(out.actual_peak, 0u);  // rank 0 really had memory placed before the unwind
  ASSERT_EQ(out.devices.size(), 2u);
  EXPECT_NE(out.devices[0], out.devices[1]);
  EXPECT_GE(r.oom_events, 2u);

  // The devices survive the partial-placement unwinds with claims and blocks fully released:
  // the later job admits immediately and completes.
  EXPECT_EQ(r.completed, 1u);
  EXPECT_EQ(r.jobs[1].status, JobStatus::kCompleted);
  EXPECT_EQ(r.jobs[1].queue_wait, 0.0);
  for (const DeviceMetrics& d : r.devices) {
    EXPECT_LE(d.peak_used, d.capacity);
  }
}

TEST(Fleet, TooManyRanksForTheFleetIsRejectedUpfront) {
  ClusterJob job = OversizedTrainingJob();
  job.train.micro_batch_size = 1;
  job.train.num_microbatches = 2;
  job.train.parallel.pp = 3;
  ClusterResult r =
      RunCluster(SmallFleet(SchedulerPolicy::kFirstFit, AllocatorKind::kCaching), {job});
  EXPECT_EQ(r.rejected_upfront, 1u);
  EXPECT_EQ(r.jobs[0].status, JobStatus::kRejectedUpfront);
}

TEST(Fleet, ServingSloDegradesToZeroForFailedInstances) {
  ClusterJob serve;
  serve.id = 0;
  serve.type = ClusterJobType::kServing;
  serve.submit_time = 1;
  serve.model = "gpt2";
  serve.seed = 3;
  serve.scenario = ScenarioByName("chat");
  serve.scenario.num_requests = 8;
  serve.engine.kv_budget_bytes = 64 * GiB;  // naive estimate can never fit: rejected up front
  ClusterResult r =
      RunCluster(SmallFleet(SchedulerPolicy::kFirstFit, AllocatorKind::kCaching), {serve});
  EXPECT_EQ(r.serving_jobs, 1u);
  EXPECT_EQ(r.rejected_upfront, 1u);
  EXPECT_EQ(r.serve_slo_attainment, 0.0);
}

}  // namespace
}  // namespace stalloc
