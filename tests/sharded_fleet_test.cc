// The determinism harness for the sharded parallel fleet (src/cluster/sharded_fleet.cc).
//
// The contract under test: RunCluster's ClusterResult is bit-identical — every utilization and
// fragmentation integral, queue-wait percentile, SLO attainment, per-device OOM count and
// per-job outcome — no matter how many workers step the shards or how devices are assigned to
// them. The comparison runs through ClusterResult::Digest(), which hashes doubles by bit
// pattern, so even a one-ULP divergence fails. A serial golden digest is pinned first so a
// refactor that perturbs serial behavior fails loudly before any parallel comparison runs.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/cluster/scheduler.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/trainsim/train_config.h"

namespace stalloc {
namespace {

ClusterWorkloadConfig SmallMixedWorkload() {
  ClusterWorkloadConfig config;
  config.num_jobs = 6;
  config.train_fraction = 0.5;
  config.mean_interarrival = 800;
  config.micro_batches = {1, 2};
  config.num_microbatches = 2;
  config.max_pp = 2;
  config.min_iterations = 1;
  config.max_iterations = 2;
  config.serve_requests = 12;
  config.kv_budget_bytes = 1 * GiB;
  return config;
}

FleetConfig Fleet(SchedulerPolicy policy, std::vector<uint64_t> capacities, int workers) {
  FleetConfig fleet;
  fleet.device_capacities = std::move(capacities);
  fleet.policy = policy;
  fleet.allocator = AllocatorKind::kCaching;
  fleet.workers = workers;
  return fleet;
}

// The serial reference digest for a fixed (workload, fleet) pair. Any change to this value is
// a behavior change of the simulator itself and must be deliberate: update the golden below
// only alongside a CHANGES.md note saying the serial fleet semantics moved.
TEST(ShardedFleet, SerialGoldenDigest) {
  const auto jobs = GenerateClusterWorkload(SmallMixedWorkload(), 21);
  const ClusterResult r =
      RunCluster(Fleet(SchedulerPolicy::kFirstFit, {16 * GiB, 16 * GiB}, 0), jobs);
  EXPECT_EQ(r.completed, jobs.size());
  EXPECT_EQ(r.Digest(), "d6986ffe96219217");
}

// The tentpole assertion: serial and 1/2/8-worker runs are bit-identical on all three
// admission policies.
TEST(ShardedFleet, BitIdenticalAcrossWorkerCountsOnEveryPolicy) {
  const auto jobs = GenerateClusterWorkload(SmallMixedWorkload(), 21);
  for (SchedulerPolicy policy : AllSchedulerPolicies()) {
    const ClusterResult serial =
        RunCluster(Fleet(policy, {16 * GiB, 16 * GiB, 16 * GiB}, 0), jobs);
    const std::string want = serial.Digest();
    for (int workers : {1, 2, 8}) {
      const ClusterResult parallel =
          RunCluster(Fleet(policy, {16 * GiB, 16 * GiB, 16 * GiB}, workers), jobs);
      EXPECT_EQ(parallel.Digest(), want)
          << SchedulerPolicyName(policy) << " diverged at workers=" << workers << "\nserial:   "
          << serial.Summary() << "\nparallel: " << parallel.Summary();
      // Digest inequality is opaque; spot-check the headline fields too so a failure names
      // what moved.
      EXPECT_EQ(parallel.makespan, serial.makespan);
      EXPECT_EQ(parallel.oom_events, serial.oom_events);
      EXPECT_EQ(parallel.ops_replayed, serial.ops_replayed);
      EXPECT_EQ(parallel.fleet_avg_utilization, serial.fleet_avg_utilization);
      EXPECT_EQ(parallel.queue_wait_p99, serial.queue_wait_p99);
      EXPECT_EQ(parallel.serve_slo_attainment, serial.serve_slo_attainment);
      ASSERT_EQ(parallel.devices.size(), serial.devices.size());
      for (size_t d = 0; d < serial.devices.size(); ++d) {
        EXPECT_EQ(parallel.devices[d].avg_utilization, serial.devices[d].avg_utilization) << d;
        EXPECT_EQ(parallel.devices[d].avg_external_frag, serial.devices[d].avg_external_frag)
            << d;
        EXPECT_EQ(parallel.devices[d].oom_events, serial.devices[d].oom_events) << d;
      }
    }
  }
}

// Shard topology must not matter either: one mega-shard, a few round-robin shards, one shard
// per device and a hand-scrambled assignment all reproduce the serial digest.
TEST(ShardedFleet, BitIdenticalAcrossShardTopologies) {
  const auto jobs = GenerateClusterWorkload(SmallMixedWorkload(), 9);
  const std::vector<uint64_t> caps = {16 * GiB, 16 * GiB, 16 * GiB, 16 * GiB};
  const std::string want =
      RunCluster(Fleet(SchedulerPolicy::kBestFit, caps, 0), jobs).Digest();
  for (int shards : {1, 2, 3}) {
    FleetConfig fleet = Fleet(SchedulerPolicy::kBestFit, caps, 2);
    fleet.shards = shards;
    EXPECT_EQ(RunCluster(fleet, jobs).Digest(), want) << "shards=" << shards;
  }
  FleetConfig scrambled = Fleet(SchedulerPolicy::kBestFit, caps, 4);
  scrambled.shard_assignment = {2, 0, 2, 1};  // uneven, out of order, shard 2 owns two devices
  EXPECT_EQ(RunCluster(scrambled, jobs).Digest(), want);
}

// Determinism is easiest to break on the OOM path (parked sources, deferred unwinds, requeue
// ordering), so force it: a tight two-device fleet where pipelined training jobs OOM, requeue
// and get rejected. The digests must still agree — and the scenario must actually exercise
// OOMs, or the test is vacuous.
TEST(ShardedFleet, BitIdenticalUnderOomPressure) {
  ClusterJob heavy;
  heavy.id = 0;
  heavy.type = ClusterJobType::kTraining;
  heavy.submit_time = 1;
  heavy.model = "gpt2";
  heavy.seed = 8;
  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 4;
  config.micro_batch_size = 4;
  heavy.train = ApplyConfigTag(config, "N");  // per-rank peak far above the naive estimate
  heavy.iterations = 1;

  ClusterJob second = heavy;
  second.id = 1;
  second.submit_time = 5;
  second.seed = 9;

  ClusterJob small;  // completes after the heavies burn out, over the same devices
  small.id = 2;
  small.type = ClusterJobType::kTraining;
  small.submit_time = 30000;
  small.model = "gpt2";
  small.seed = 3;
  TrainConfig tiny;
  tiny.num_microbatches = 2;
  tiny.micro_batch_size = 1;
  small.train = ApplyConfigTag(tiny, "N");
  small.iterations = 1;

  const std::vector<ClusterJob> jobs = {heavy, second, small};
  FleetConfig serial = Fleet(SchedulerPolicy::kFirstFit, {16 * GiB, 5 * GiB}, 0);
  serial.max_oom_retries = 1;
  const ClusterResult base = RunCluster(serial, jobs);
  EXPECT_GT(base.oom_events, 0u) << "scenario lost its OOM pressure: " << base.Summary();
  EXPECT_GT(base.rejected_oom, 0u);
  EXPECT_EQ(base.completed, 1u);
  for (int workers : {2, 8}) {
    FleetConfig fleet = serial;
    fleet.workers = workers;
    EXPECT_EQ(RunCluster(fleet, jobs).Digest(), base.Digest()) << "workers=" << workers;
  }
}

// Colliding submit ticks (min_interarrival = 0) are exactly where a sloppy event merge would
// tie-break on shard or thread order; the (submit_time, id) total order must hold instead.
TEST(ShardedFleet, CollidingSubmitTimesStayDeterministic) {
  ClusterWorkloadConfig wl = SmallMixedWorkload();
  wl.num_jobs = 8;
  wl.mean_interarrival = 1;  // dense arrivals...
  wl.min_interarrival = 0;   // ...with zero-gap ties allowed
  const auto jobs = GenerateClusterWorkload(wl, 5);
  bool has_tie = false;
  for (size_t i = 1; i < jobs.size(); ++i) {
    ASSERT_LE(jobs[i - 1].submit_time, jobs[i].submit_time);
    ASSERT_LT(jobs[i - 1].id, jobs[i].id);
    has_tie |= jobs[i - 1].submit_time == jobs[i].submit_time;
  }
  EXPECT_TRUE(has_tie) << "workload no longer produces colliding submit times";

  const std::string want =
      RunCluster(Fleet(SchedulerPolicy::kFirstFit, {16 * GiB, 16 * GiB}, 0), jobs).Digest();
  for (int workers : {2, 8}) {
    EXPECT_EQ(
        RunCluster(Fleet(SchedulerPolicy::kFirstFit, {16 * GiB, 16 * GiB}, workers), jobs)
            .Digest(),
        want)
        << "workers=" << workers;
  }
}

// Seeded randomized stress: random workloads (ties allowed), random tight-ish fleets, random
// policies, and for each a random worker count plus a random shard assignment, all pinned
// against the serial run of the same inputs.
TEST(ShardedFleet, RandomizedWorkerAndShardAssignmentStress) {
  Rng rng(123);
  for (int round = 0; round < 4; ++round) {
    ClusterWorkloadConfig wl = SmallMixedWorkload();
    wl.num_jobs = 4 + static_cast<int>(rng.NextBelow(4));
    wl.mean_interarrival = 1 + static_cast<double>(rng.NextBelow(1200));
    wl.min_interarrival = rng.NextBelow(2);  // half the rounds allow ties
    const auto jobs = GenerateClusterWorkload(wl, rng.Next());

    const size_t num_devices = 2 + rng.NextBelow(3);
    std::vector<uint64_t> caps;
    for (size_t d = 0; d < num_devices; ++d) {
      caps.push_back((5 + rng.NextBelow(12)) * GiB);  // tight enough that some rounds OOM
    }
    const auto policies = AllSchedulerPolicies();
    const SchedulerPolicy policy = policies[rng.NextBelow(policies.size())];

    FleetConfig serial = Fleet(policy, caps, 0);
    const ClusterResult base = RunCluster(serial, jobs);

    FleetConfig fleet = Fleet(policy, caps, 2 + static_cast<int>(rng.NextBelow(7)));
    fleet.shard_assignment.clear();
    for (size_t d = 0; d < num_devices; ++d) {
      fleet.shard_assignment.push_back(static_cast<int>(rng.NextBelow(num_devices)));
    }
    const ClusterResult parallel = RunCluster(fleet, jobs);
    EXPECT_EQ(parallel.Digest(), base.Digest())
        << "round " << round << " workers=" << fleet.workers << "\nserial:   " << base.Summary()
        << "\nparallel: " << parallel.Summary();
  }
}

// Repeated parallel runs of one configuration agree with themselves — no run-to-run thread
// scheduling leak.
TEST(ShardedFleet, ParallelRunsAreReproducible) {
  const auto jobs = GenerateClusterWorkload(SmallMixedWorkload(), 42);
  const FleetConfig fleet = Fleet(SchedulerPolicy::kPlanAware, {16 * GiB, 16 * GiB}, 4);
  const std::string first = RunCluster(fleet, jobs).Digest();
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(RunCluster(fleet, jobs).Digest(), first);
  }
}

}  // namespace
}  // namespace stalloc
