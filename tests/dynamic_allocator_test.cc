// Focused tests of the Dynamic Allocator's interval selection (§6.2): A_c = A_a ∩ A_i with
// best-fit placement, arrival-order group matching, and exhaustion behaviour.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/units.h"
#include "src/core/stalloc_allocator.h"

namespace stalloc {
namespace {

// A plan with one long-lived static block at [0, 1 MiB) and pool size 8 MiB; the reusable region
// for group (0, 1) covers [1 MiB, 5 MiB).
struct Fixture {
  Fixture() : dev(1 * GiB) {
    MemoryEvent s;
    s.id = 0;
    s.size = 1 * MiB;
    s.ts = 0;
    s.te = 1000;
    plan.decisions.push_back({s, 0, 1 * MiB});
    plan.pool_size = 8 * MiB;
    plan.lower_bound = 1 * MiB;

    IntervalSet region;
    region.Insert(1 * MiB, 5 * MiB);
    space.regions.emplace(std::make_pair(0, 1), region);
    space.expected_le[0] = {1, 1, 1, 1, 1, 1, 1, 1};
  }

  RequestContext Dyn() {
    RequestContext ctx;
    ctx.dyn = true;
    ctx.layer = 0;
    return ctx;
  }

  SimDevice dev;
  StaticPlan plan;
  DynamicReusableSpace space;
};

TEST(DynamicAllocator, AllocatesInsideReusableRegion) {
  Fixture f;
  STAllocAllocator alloc(&f.dev, f.plan, f.space);
  ASSERT_TRUE(alloc.Init());
  auto a = alloc.Malloc(512 * KiB, f.Dyn());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc.breakdown().dynamic_reuse_hits, 1u);
  // The address must be inside [pool_base + 1 MiB, pool_base + 5 MiB).
  EXPECT_EQ(alloc.ReservedBytes(), 8 * MiB);  // no fallback reservation
  alloc.Free(*a);
}

TEST(DynamicAllocator, SequentialRequestsDoNotOverlap) {
  Fixture f;
  STAllocAllocator alloc(&f.dev, f.plan, f.space);
  ASSERT_TRUE(alloc.Init());
  // Four concurrent 1 MiB requests exactly fill the 4 MiB reusable window; the stomping
  // detector in AllocatorBase verifies disjointness.
  std::vector<uint64_t> live;
  for (int i = 0; i < 4; ++i) {
    auto a = alloc.Malloc(1 * MiB, f.Dyn());
    ASSERT_TRUE(a.has_value());
    live.push_back(*a);
  }
  EXPECT_EQ(alloc.breakdown().dynamic_reuse_hits, 4u);
  // A fifth concurrent request exceeds the window: caching fallback.
  auto extra = alloc.Malloc(1 * MiB, f.Dyn());
  ASSERT_TRUE(extra.has_value());
  EXPECT_EQ(alloc.breakdown().dynamic_fallbacks, 1u);
  for (auto a : live) {
    alloc.Free(a);
  }
  alloc.Free(*extra);
}

TEST(DynamicAllocator, FreedRegionIsReusable) {
  Fixture f;
  STAllocAllocator alloc(&f.dev, f.plan, f.space);
  ASSERT_TRUE(alloc.Init());
  auto a = alloc.Malloc(4 * MiB, f.Dyn());
  ASSERT_TRUE(a.has_value());
  alloc.Free(*a);
  auto b = alloc.Malloc(4 * MiB, f.Dyn());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(alloc.breakdown().dynamic_reuse_hits, 2u);
  alloc.Free(*b);
}

TEST(DynamicAllocator, OversizedRequestFallsBack) {
  Fixture f;
  STAllocAllocator alloc(&f.dev, f.plan, f.space);
  ASSERT_TRUE(alloc.Init());
  auto a = alloc.Malloc(6 * MiB, f.Dyn());  // larger than the 4 MiB window
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc.breakdown().dynamic_reuse_hits, 0u);
  EXPECT_EQ(alloc.breakdown().dynamic_fallbacks, 1u);
  alloc.Free(*a);
}

TEST(DynamicAllocator, ExhaustedArrivalTableFallsBack) {
  Fixture f;
  f.space.expected_le[0] = {1};  // profile saw a single request for this layer
  STAllocAllocator alloc(&f.dev, f.plan, f.space);
  ASSERT_TRUE(alloc.Init());
  auto a = alloc.Malloc(512 * KiB, f.Dyn());
  auto b = alloc.Malloc(512 * KiB, f.Dyn());  // beyond the profiled count
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(alloc.breakdown().dynamic_reuse_hits, 1u);
  EXPECT_EQ(alloc.breakdown().dynamic_fallbacks, 1u);
  alloc.Free(*a);
  alloc.Free(*b);
  // EndIteration resets the arrival counters: the next iteration hits the region again.
  alloc.EndIteration();
  auto c = alloc.Malloc(512 * KiB, f.Dyn());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(alloc.breakdown().dynamic_reuse_hits, 2u);
  alloc.Free(*c);
}

TEST(DynamicAllocator, BestFitPrefersTighterInterval) {
  Fixture f;
  // Two disjoint reusable windows: 3 MiB and 1 MiB. A 1 MiB request must take the tighter one.
  IntervalSet region;
  region.Insert(1 * MiB, 4 * MiB);
  region.Insert(5 * MiB, 6 * MiB);
  f.space.regions[{0, 1}] = region;
  STAllocAllocator alloc(&f.dev, f.plan, f.space);
  ASSERT_TRUE(alloc.Init());
  auto a = alloc.Malloc(1 * MiB, f.Dyn());
  ASSERT_TRUE(a.has_value());
  // The tighter window starts 5 MiB into the pool.
  const uint64_t offset_in_pool = *a % (8 * MiB);
  EXPECT_EQ(offset_in_pool, 5 * MiB);
  alloc.Free(*a);
}

}  // namespace
}  // namespace stalloc
