// AllocatorRegistry: name round trips, unknown-name errors, per-kind override plumbing, and
// exhaustiveness against AllAllocatorKinds().

#include "src/allocators/registry.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/driver/experiment.h"
#include "src/gpu/sim_device.h"

namespace stalloc {
namespace {

TEST(RegistryTest, UnknownNameIsAnError) {
  SimDevice device(1 * GiB);
  EXPECT_EQ(AllocatorRegistry::Global().Find("no-such-allocator"), nullptr);
  EXPECT_EQ(AllocatorRegistry::Global().Create("no-such-allocator", &device), nullptr);
  EXPECT_EQ(ParseAllocatorKind("no-such-allocator"), std::nullopt);
}

TEST(RegistryTest, ExhaustiveAgainstAllAllocatorKinds) {
  const std::vector<AllocatorKind> kinds = AllAllocatorKinds();
  EXPECT_EQ(AllocatorRegistry::Global().size(), kinds.size());
  EXPECT_EQ(AllocatorRegistry::Global().Names().size(), kinds.size());
  // Every kind has a registry entry; the enum order matches registration order.
  const std::vector<std::string> names = AllocatorRegistry::Global().Names();
  for (size_t i = 0; i < kinds.size(); ++i) {
    const AllocatorRegistry::Entry* entry = AllocatorRegistry::Global().Find(kinds[i]);
    ASSERT_NE(entry, nullptr) << "kind " << static_cast<int>(kinds[i]);
    EXPECT_EQ(entry->name, names[i]);
  }
  // Names are unique.
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(RegistryTest, KindNameRoundTrip) {
  for (AllocatorKind kind : AllAllocatorKinds()) {
    const char* name = AllocatorKindName(kind);
    ASSERT_STRNE(name, "?");
    const auto parsed = ParseAllocatorKind(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind) << name;
  }
  // The sentinel never resolves.
  EXPECT_STREQ(AllocatorKindName(AllocatorKind::kCount), "?");
}

TEST(RegistryTest, PlanKindsHaveNoFactory) {
  SimDevice device(1 * GiB);
  for (const char* name : {"stalloc", "stalloc-noreuse"}) {
    const AllocatorRegistry::Entry* entry = AllocatorRegistry::Global().Find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_TRUE(entry->requires_plan) << name;
    EXPECT_EQ(AllocatorRegistry::Global().Create(name, &device), nullptr) << name;
  }
  // The plan kinds disappear from the shared-device listing.
  for (const std::string& name :
       AllocatorRegistry::Global().Names(/*include_plan_kinds=*/false)) {
    EXPECT_FALSE(AllocatorRegistry::Global().Find(name)->requires_plan) << name;
  }
  EXPECT_EQ(AllocatorRegistry::Global().Names(false).size(),
            AllocatorRegistry::Global().Names(true).size() - 2);
}

TEST(RegistryTest, CreatedAllocatorsReportTheirOwnStats) {
  for (const std::string& name :
       AllocatorRegistry::Global().Names(/*include_plan_kinds=*/false)) {
    SimDevice device(1 * GiB);
    auto alloc = AllocatorRegistry::Global().Create(name, &device);
    ASSERT_NE(alloc, nullptr) << name;
    auto addr = alloc->Malloc(4096);
    ASSERT_TRUE(addr.has_value()) << name;
    EXPECT_EQ(alloc->stats().num_mallocs, 1u) << name;
    EXPECT_TRUE(alloc->Free(*addr)) << name;
  }
}

TEST(RegistryTest, PagedBlockOverridePlumbsThrough) {
  // A 1-byte allocation makes the pool acquire one 64-block slab, so the page-size override is
  // directly observable through ReservedBytes granularity (64 x block_bytes).
  SimDevice device_default(4 * GiB);
  auto pool_default = AllocatorRegistry::Global().Create("paged-kv", &device_default);
  ASSERT_NE(pool_default, nullptr);
  ASSERT_TRUE(pool_default->Malloc(1).has_value());
  const uint64_t default_slab = pool_default->stats().reserved_peak;
  EXPECT_EQ(default_slab, 64 * 2 * MiB);  // PagedKVConfig defaults

  AllocatorOptions options;
  options.paged_block_bytes = 4 * MiB;
  SimDevice device_big(4 * GiB);
  auto pool_big = AllocatorRegistry::Global().Create("paged-kv", &device_big, options);
  ASSERT_NE(pool_big, nullptr);
  ASSERT_TRUE(pool_big->Malloc(1).has_value());
  EXPECT_EQ(pool_big->stats().reserved_peak, 64 * 4 * MiB);
  EXPECT_NE(pool_big->stats().reserved_peak, default_slab);
}

TEST(RegistryTest, GmlakeFragLimitOverridePlumbsThrough) {
  // The override only changes stitching behaviour under fragmentation pressure; constructing
  // with it must at least succeed and behave as a functioning allocator.
  AllocatorOptions options;
  options.gmlake_frag_limit = 64 * MiB;
  SimDevice device(1 * GiB);
  auto alloc = AllocatorRegistry::Global().Create("gmlake", &device, options);
  ASSERT_NE(alloc, nullptr);
  auto addr = alloc->Malloc(1 * MiB);
  ASSERT_TRUE(addr.has_value());
  EXPECT_TRUE(alloc->Free(*addr));
}

TEST(RegistryTest, MakeBaselineAllocatorDelegatesToRegistry) {
  for (AllocatorKind kind : AllAllocatorKinds()) {
    SimDevice device(1 * GiB);
    ExperimentOptions options;
    auto via_shim = MakeBaselineAllocator(kind, &device, options);
    const AllocatorRegistry::Entry* entry = AllocatorRegistry::Global().Find(kind);
    ASSERT_NE(entry, nullptr);
    if (entry->requires_plan) {
      EXPECT_EQ(via_shim, nullptr) << entry->name;
    } else {
      ASSERT_NE(via_shim, nullptr) << entry->name;
    }
  }
}

// Mutating registration runs on a locally constructed registry so the Global() singleton the
// other tests pin stays untouched.
TEST(RegistryTest, NewKindsRegisterInOnePlace) {
  AllocatorRegistry registry;
  const size_t builtins = registry.size();
  registry.Register({"paged-kv-2m", AllocatorKind::kCount, /*requires_plan=*/false,
                     [](SimDevice* device, const AllocatorOptions&) -> std::unique_ptr<Allocator> {
                       SimDevice* d = device;
                       AllocatorOptions opts;
                       opts.paged_block_bytes = 2 * MiB;
                       return AllocatorRegistry::Global().Create("paged-kv", d, opts);
                     }});
  EXPECT_EQ(registry.size(), builtins + 1);
  SimDevice device(1 * GiB);
  auto alloc = registry.Create("paged-kv-2m", &device);
  ASSERT_NE(alloc, nullptr);
  ASSERT_TRUE(alloc->Malloc(1).has_value());
  EXPECT_EQ(alloc->stats().reserved_peak, 64 * 2 * MiB);
  // Registered external kinds appear in listings but never alias an enum name.
  EXPECT_EQ(registry.Names().back(), "paged-kv-2m");
  EXPECT_EQ(registry.Find(AllocatorKind::kCount), nullptr);
}

}  // namespace
}  // namespace stalloc
