#include "src/trace/timeline.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace stalloc {
namespace {

TEST(Timeline, EmptyInputsRenderPlaceholder) {
  EXPECT_EQ(RenderAsciiTimeline({}, 0, 0), "(empty timeline)\n");
  EXPECT_EQ(RenderAsciiTimeline({}, 0, 100), "(empty timeline)\n");
}

TEST(Timeline, FullyOccupiedRendersHashes) {
  std::vector<TimelineBox> boxes = {{0, 1024, 0, 100, false}};
  TimelineOptions opt;
  opt.rows = 2;
  opt.cols = 8;
  const std::string s = RenderAsciiTimeline(boxes, 1024, 100, opt);
  EXPECT_EQ(std::count(s.begin(), s.end(), '#'), 16);  // 2 rows x 8 cols all full
  EXPECT_EQ(std::count(s.begin(), s.end(), ' ') > 0, true);
}

TEST(Timeline, EmptyBandsStayBlank) {
  // Box occupies only the lower half of the pool.
  std::vector<TimelineBox> boxes = {{0, 512, 0, 100, false}};
  TimelineOptions opt;
  opt.rows = 2;
  opt.cols = 4;
  const std::string s = RenderAsciiTimeline(boxes, 1024, 100, opt);
  EXPECT_EQ(std::count(s.begin(), s.end(), '#'), 4);  // only the bottom band
}

TEST(Timeline, PartialFillUsesDots) {
  // 25% of a band over the full time range.
  std::vector<TimelineBox> boxes = {{0, 256, 0, 100, false}};
  TimelineOptions opt;
  opt.rows = 1;
  opt.cols = 4;
  const std::string s = RenderAsciiTimeline(boxes, 1024, 100, opt);
  EXPECT_EQ(std::count(s.begin(), s.end(), '.'), 4);
  EXPECT_EQ(std::count(s.begin(), s.end(), '#'), 0);
}

TEST(Timeline, SvgContainsBoxes) {
  std::vector<TimelineBox> boxes = {{0, 512, 0, 50, false}, {512, 512, 25, 75, true}};
  const std::string svg = RenderSvgTimeline(boxes, 1024, 100);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Two boxes + the background rect.
  EXPECT_EQ(static_cast<int>(std::string::npos != svg.find("#3a6fe8")), 1);  // static colour
  EXPECT_NE(svg.find("#e8803a"), std::string::npos);                         // dynamic colour
}

TEST(Timeline, SvgDegenerateBoxesSkipped) {
  std::vector<TimelineBox> boxes = {{0, 0, 0, 50, false}, {0, 512, 50, 50, false}};
  const std::string svg = RenderSvgTimeline(boxes, 1024, 100);
  EXPECT_EQ(svg.find("#3a6fe8"), std::string::npos);  // nothing drawable
}

}  // namespace
}  // namespace stalloc
