// Session/ExperimentSpec: every spec axis must dispatch to the corresponding driver and
// reproduce its outcome bit-for-bit on identical seeds — the guarantee that rebasing a bench
// onto the API layer can never change its numbers.

#include "src/api/session.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/spec.h"
#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/common/units.h"
#include "src/driver/experiment.h"
#include "src/driver/job.h"
#include "src/driver/serve_experiment.h"
#include "src/servesim/request_gen.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

TrainConfig SmallTrain() {
  TrainConfig c;
  c.parallel.pp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 2;
  return c;
}

ExperimentOptions SmallOptions() {
  ExperimentOptions opt;
  opt.capacity_bytes = 16ull * GiB;
  return opt;
}

void ExpectBitIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.oom, b.oom);
  EXPECT_EQ(a.infeasible, b.infeasible);
  EXPECT_EQ(a.allocated_peak, b.allocated_peak);
  EXPECT_EQ(a.reserved_peak, b.reserved_peak);
  EXPECT_EQ(a.memory_efficiency, b.memory_efficiency);  // bitwise: same replay, same division
  EXPECT_EQ(a.fragmentation_bytes, b.fragmentation_bytes);
  EXPECT_EQ(a.device_api_calls, b.device_api_calls);
  EXPECT_EQ(a.device_release_calls, b.device_release_calls);
  EXPECT_EQ(a.Summary(), b.Summary());
}

TEST(Session, TrainRankMatchesRunExperimentBitForBit) {
  for (const char* alloc : {"torch-caching", "stalloc"}) {
    ExperimentSpec spec;
    spec.axis = WorkloadAxis::kTrainRank;
    spec.model = "gpt2";
    spec.train = SmallTrain();
    spec.train.rank = 1;
    spec.options = SmallOptions();

    Session session;
    RunRecord rec = session.RunOne(spec, alloc);

    WorkloadBuilder workload(ModelByName("gpt2"), spec.train);
    ExperimentResult direct = RunExperiment(workload, *ParseAllocatorKind(alloc), spec.options);

    ASSERT_TRUE(rec.train_rank.has_value()) << alloc;
    ExpectBitIdentical(*rec.train_rank, direct);
    // The envelope's common fields mirror the payload exactly.
    EXPECT_EQ(rec.allocated_peak, direct.allocated_peak) << alloc;
    EXPECT_EQ(rec.reserved_peak, direct.reserved_peak) << alloc;
    EXPECT_EQ(rec.memory_efficiency, direct.memory_efficiency) << alloc;
    EXPECT_EQ(rec.status, RunStatus::kOk) << alloc;
    EXPECT_EQ(rec.run_seed, spec.options.run_seed) << alloc;
  }
}

TEST(Session, ConfigTagMatchesApplyConfigTag) {
  ExperimentSpec spec;
  spec.axis = WorkloadAxis::kTrainRank;
  spec.model = "gpt2";
  spec.train = SmallTrain();
  spec.config_tag = "R";
  spec.options = SmallOptions();

  Session session;
  RunRecord rec = session.RunOne(spec, "torch-caching");

  WorkloadBuilder workload(ModelByName("gpt2"), ApplyConfigTag(SmallTrain(), "R"));
  ExperimentResult direct = RunExperiment(workload, AllocatorKind::kCaching, spec.options);
  ASSERT_TRUE(rec.train_rank.has_value());
  ExpectBitIdentical(*rec.train_rank, direct);
}

TEST(Session, TrainJobMatchesRunJobBitForBit) {
  ExperimentSpec spec;
  spec.axis = WorkloadAxis::kTrainJob;
  spec.model = "gpt2";
  spec.train = SmallTrain();
  spec.options = SmallOptions();

  Session session;
  RunRecord rec = session.RunOne(spec, "torch-caching");

  JobResult direct = RunJob(ModelByName("gpt2"), spec.train, AllocatorKind::kCaching,
                            spec.options);
  ASSERT_TRUE(rec.job.has_value());
  ASSERT_EQ(rec.job->ranks.size(), direct.ranks.size());
  for (size_t i = 0; i < direct.ranks.size(); ++i) {
    ExpectBitIdentical(rec.job->ranks[i], direct.ranks[i]);
  }
  EXPECT_EQ(rec.job->Summary(), direct.Summary());
  EXPECT_EQ(rec.reserved_peak, direct.max_reserved);
  EXPECT_EQ(rec.memory_efficiency, direct.worst_efficiency);
}

TEST(Session, ServingMatchesRunServeExperimentBitForBit) {
  for (const char* alloc : {"paged-kv", "stalloc"}) {
    ExperimentSpec spec;
    spec.axis = WorkloadAxis::kServing;
    spec.model = "gpt2";
    spec.scenario = "chat";
    spec.serve_requests = 24;
    spec.options = SmallOptions();
    spec.engine.kv_budget_bytes = 2ull * GiB;

    Session session;
    RunRecord rec = session.RunOne(spec, alloc);

    ServeScenario scenario = ScenarioByName("chat");
    scenario.num_requests = 24;
    ServeOptions serve_options;
    serve_options.base = spec.options;
    serve_options.engine = spec.engine;
    ServeExperimentResult direct = RunServeExperiment(ModelByName("gpt2"), scenario,
                                                      *ParseAllocatorKind(alloc), serve_options);

    ASSERT_TRUE(rec.serve.has_value()) << alloc;
    ExpectBitIdentical(rec.serve->replay, direct.replay);
    EXPECT_EQ(rec.serve->trace_events, direct.trace_events) << alloc;
    EXPECT_EQ(rec.serve->serve.preemptions, direct.serve.preemptions) << alloc;
    EXPECT_EQ(rec.serve->serve.tokens_generated, direct.serve.tokens_generated) << alloc;
    EXPECT_EQ(rec.serve->Summary(), direct.Summary()) << alloc;
  }
}

TEST(Session, ClusterMatchesRunClusterBitForBit) {
  ExperimentSpec spec;
  spec.axis = WorkloadAxis::kCluster;
  spec.devices = 2;
  spec.policy = "first-fit";
  spec.options.capacity_bytes = 16ull * GiB;
  spec.options.run_seed = 7;
  spec.cluster.num_jobs = 4;
  spec.cluster.serve_requests = 16;

  Session session;
  RunRecord rec = session.RunOne(spec, "torch-caching");

  FleetConfig fleet;
  fleet.device_capacities = {16ull * GiB, 16ull * GiB};
  fleet.policy = SchedulerPolicy::kFirstFit;
  fleet.allocator = AllocatorKind::kCaching;
  const std::vector<ClusterJob> jobs = GenerateClusterWorkload(spec.cluster, 7);
  ClusterResult direct = RunCluster(fleet, jobs);

  ASSERT_TRUE(rec.cluster.has_value());
  const ClusterResult& via = *rec.cluster;
  EXPECT_EQ(via.num_jobs, direct.num_jobs);
  EXPECT_EQ(via.completed, direct.completed);
  EXPECT_EQ(via.rejected_upfront, direct.rejected_upfront);
  EXPECT_EQ(via.rejected_oom, direct.rejected_oom);
  EXPECT_EQ(via.oom_events, direct.oom_events);
  EXPECT_EQ(via.requeues, direct.requeues);
  EXPECT_EQ(via.makespan, direct.makespan);
  EXPECT_EQ(via.queue_wait_p99, direct.queue_wait_p99);
  EXPECT_EQ(via.fleet_avg_utilization, direct.fleet_avg_utilization);
  EXPECT_EQ(via.serve_slo_attainment, direct.serve_slo_attainment);
  ASSERT_EQ(via.devices.size(), direct.devices.size());
  for (size_t d = 0; d < direct.devices.size(); ++d) {
    EXPECT_EQ(via.devices[d].peak_used, direct.devices[d].peak_used);
    EXPECT_EQ(via.devices[d].memory_efficiency, direct.devices[d].memory_efficiency);
    EXPECT_EQ(via.devices[d].device_api_calls, direct.devices[d].device_api_calls);
  }
  EXPECT_EQ(via.Summary(), direct.Summary());
  EXPECT_EQ(rec.oom_events, direct.oom_events);
  EXPECT_EQ(rec.slo_attainment, direct.serve_slo_attainment);
}

TEST(Session, RepeatBumpsRunSeedOnly) {
  ExperimentSpec spec;
  spec.axis = WorkloadAxis::kTrainRank;
  spec.model = "qwen1.5-moe";  // MoE: run-seed changes routed expert sizes, so seeds matter
  spec.train = SmallTrain();
  spec.train.parallel.ep = 4;
  spec.options = SmallOptions();
  spec.options.capacity_bytes = 32ull * GiB;

  Session session;
  RunRecord r1 = session.RunOne(spec, "torch-caching", /*repeat=*/1);
  EXPECT_EQ(r1.run_seed, spec.options.run_seed + 1);
  EXPECT_EQ(r1.profile_seed, spec.options.profile_seed);

  ExperimentOptions bumped = spec.options;
  bumped.run_seed += 1;
  WorkloadBuilder workload(ModelByName("qwen1.5-moe"), spec.train);
  ExperimentResult direct = RunExperiment(workload, AllocatorKind::kCaching, bumped);
  ASSERT_TRUE(r1.train_rank.has_value());
  ExpectBitIdentical(*r1.train_rank, direct);
}

TEST(Session, RunCoversAllocatorsTimesRepeats) {
  ExperimentSpec spec;
  spec.axis = WorkloadAxis::kTrainRank;
  spec.model = "gpt2";
  spec.train = SmallTrain();
  spec.train.num_microbatches = 2;
  spec.options = SmallOptions();
  spec.allocators = {"torch-caching", "native"};
  spec.repeats = 2;

  Session session;
  const std::vector<RunRecord> records = session.Run(spec);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].allocator, "torch-caching");
  EXPECT_EQ(records[0].repeat, 0);
  EXPECT_EQ(records[1].allocator, "torch-caching");
  EXPECT_EQ(records[1].repeat, 1);
  EXPECT_EQ(records[2].allocator, "native");
  EXPECT_EQ(records[3].run_seed, spec.options.run_seed + 1);
}

TEST(Session, ValidateRejectsBadSpecs) {
  std::string error;
  ExperimentSpec spec;
  spec.allocators = {"no-such-allocator"};
  EXPECT_FALSE(Session::Validate(spec, &error));
  EXPECT_NE(error.find("no-such-allocator"), std::string::npos);

  spec = ExperimentSpec{};
  spec.model = "no-such-model";
  EXPECT_FALSE(Session::Validate(spec, &error));

  spec = ExperimentSpec{};
  spec.axis = WorkloadAxis::kServing;
  spec.scenario = "no-such-scenario";
  EXPECT_FALSE(Session::Validate(spec, &error));

  spec = ExperimentSpec{};
  spec.axis = WorkloadAxis::kCluster;
  spec.policy = "no-such-policy";
  EXPECT_FALSE(Session::Validate(spec, &error));

  // STAlloc cannot front a shared cluster device — the scheduler is its cluster entry point.
  spec = ExperimentSpec{};
  spec.axis = WorkloadAxis::kCluster;
  spec.allocators = {"stalloc"};
  EXPECT_FALSE(Session::Validate(spec, &error));
  EXPECT_NE(error.find("plan"), std::string::npos);

  // Training-shape typos must fail here, not CHECK-abort inside the workload builder.
  spec = ExperimentSpec{};
  spec.train.parallel.pp = 0;
  EXPECT_FALSE(Session::Validate(spec, &error));

  spec = ExperimentSpec{};
  spec.train.num_microbatches = -1;
  EXPECT_FALSE(Session::Validate(spec, &error));

  spec = ExperimentSpec{};
  spec.axis = WorkloadAxis::kTrainRank;
  spec.train.rank = 5;  // pp defaults to 1
  EXPECT_FALSE(Session::Validate(spec, &error));

  spec = ExperimentSpec{};
  spec.config_tag = "XX";
  EXPECT_FALSE(Session::Validate(spec, &error));

  spec = ExperimentSpec{};
  spec.repeats = 0;
  EXPECT_FALSE(Session::Validate(spec, &error));

  // And the defaults are valid for every axis.
  for (WorkloadAxis axis : AllWorkloadAxes()) {
    spec = ExperimentSpec{};
    spec.axis = axis;
    EXPECT_TRUE(Session::Validate(spec, &error)) << WorkloadAxisName(axis) << ": " << error;
  }
}

// Registers an extra kind into the Global() registry; declared after every test whose
// expectations could observe it (none here enumerate the registry, but keep it late anyway).
TEST(Session, ValidateRejectsKindlessExternalAllocators) {
  AllocatorRegistry::Global().Register(
      {"session-test-notag", AllocatorKind::kCount, /*requires_plan=*/false,
       [](SimDevice* device, const AllocatorOptions& options) {
         return AllocatorRegistry::Global().Create("torch-caching", device, options);
       }});
  std::string error;
  ExperimentSpec spec;
  spec.allocators = {"session-test-notag"};
  // Creatable through the registry, but not runnable through Session dispatch — Validate must
  // say so gracefully instead of RunOne aborting mid-run.
  EXPECT_FALSE(Session::Validate(spec, &error));
  EXPECT_NE(error.find("AllocatorKind"), std::string::npos);
}

TEST(Session, AxisNameRoundTrip) {
  for (WorkloadAxis axis : AllWorkloadAxes()) {
    const auto parsed = ParseWorkloadAxis(WorkloadAxisName(axis));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, axis);
  }
  EXPECT_EQ(ParseWorkloadAxis("no-such-axis"), std::nullopt);
}

}  // namespace
}  // namespace stalloc
