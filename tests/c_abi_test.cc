// The stalloc_c shared-library boundary (src/cabi): every behavior an external (PyTorch
// pluggable-allocator-style) client depends on, exercised through the exported C functions —
// round-trips, error returns instead of aborts, valid stats JSON, and replay digests that are
// bit-identical to the in-process path.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/report.h"
#include "src/allocators/registry.h"
#include "src/cabi/stalloc_c.h"
#include "src/common/units.h"
#include "src/driver/replay.h"
#include "src/gpu/sim_device.h"
#include "src/replay/replay_engine.h"
#include "src/trace/synthetic.h"
#include "src/trace/trace_io.h"

namespace stalloc {
namespace {

TEST(CAbi, MallocFreeRoundTrip) {
  stalloc_handle* h = stalloc_create("vmm", 1 * GiB, "vmm.granularity=2MiB");
  ASSERT_NE(h, nullptr) << stalloc_last_error();
  const uint64_t a = stalloc_malloc(h, 64 * MiB, 0);
  const uint64_t b = stalloc_malloc(h, 300, 0);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(stalloc_free(h, a), 0);
  EXPECT_EQ(stalloc_free(h, b), 0);
  stalloc_destroy(h);
}

TEST(CAbi, CreateRejectsBadArguments) {
  EXPECT_EQ(stalloc_create("no-such-allocator", 1 * GiB, nullptr), nullptr);
  EXPECT_NE(std::string(stalloc_last_error()), "");
  EXPECT_EQ(stalloc_create("vmm", 0, nullptr), nullptr);
  // Plan-requiring kinds cannot run behind the plan-less C boundary.
  EXPECT_EQ(stalloc_create("stalloc", 1 * GiB, nullptr), nullptr);
  // Malformed option strings fail at create, not at first malloc.
  EXPECT_EQ(stalloc_create("vmm", 1 * GiB, "vmm.granularity=512KB"), nullptr);
  EXPECT_EQ(stalloc_create("vmm", 1 * GiB, "vmm.granularity=3MiB"), nullptr);
}

TEST(CAbi, DoubleFreeReturnsErrorNotAbort) {
  stalloc_handle* h = stalloc_create("torch-caching", 1 * GiB, nullptr);
  ASSERT_NE(h, nullptr);
  const uint64_t a = stalloc_malloc(h, 1 * MiB, 0);
  ASSERT_NE(a, 0u);
  EXPECT_EQ(stalloc_free(h, a), 0);
  EXPECT_EQ(stalloc_free(h, a), -1) << "second free of the same address must be an error";
  EXPECT_NE(std::string(stalloc_last_error()), "");
  EXPECT_EQ(stalloc_free(h, 0xdeadbeef), -1);
  stalloc_destroy(h);
}

TEST(CAbi, OomReturnsZeroAndSetsError) {
  stalloc_handle* h = stalloc_create("native", 64 * MiB, nullptr);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(stalloc_malloc(h, 1 * GiB, 0), 0u);
  EXPECT_NE(std::string(stalloc_last_error()), "");
  stalloc_destroy(h);
}

TEST(CAbi, StatsJsonIsValidAndSizeQueryable) {
  stalloc_handle* h = stalloc_create("vmm", 1 * GiB, nullptr);
  ASSERT_NE(h, nullptr);
  const uint64_t a = stalloc_malloc(h, 32 * MiB, 0);
  ASSERT_NE(a, 0u);

  const size_t needed = stalloc_stats_json(h, nullptr, 0);  // size query
  ASSERT_GT(needed, 0u);
  std::vector<char> buf(needed + 1);
  ASSERT_EQ(stalloc_stats_json(h, buf.data(), buf.size()), needed);

  std::string error;
  std::optional<Json> doc = Json::Parse(std::string(buf.data()), &error);
  ASSERT_TRUE(doc.has_value()) << "stats must be parseable JSON: " << error;
  EXPECT_EQ(doc->Find("allocator")->AsString(), "vmm");
  EXPECT_EQ(doc->Find("capacity_bytes")->AsUint(), 1 * GiB);
  EXPECT_EQ(doc->Find("allocated_current")->AsUint(), 32 * MiB);
  EXPECT_EQ(doc->Find("num_mallocs")->AsUint(), 1u);
  EXPECT_GE(doc->Find("reserved_current")->AsUint(), 32 * MiB);

  // A too-small buffer still reports the needed length and never overruns.
  char tiny[8];
  EXPECT_EQ(stalloc_stats_json(h, tiny, sizeof(tiny)), needed);
  EXPECT_EQ(stalloc_free(h, a), 0);
  stalloc_destroy(h);
}

// The acceptance bar for the C boundary: replaying a trace through the exported digest helper
// is bit-identical to the in-process replay path, for a VMM and a caching allocator.
TEST(CAbi, ReplayDigestMatchesInProcess) {
  const Trace trace = BuildStormTrace(3000, 11);
  const std::string path = ::testing::TempDir() + "/c_abi_digest.csv";
  ASSERT_TRUE(WriteTraceCsvFile(trace, path));
  const uint64_t capacity = 64 * GiB;

  for (const char* name : {"vmm", "torch-caching"}) {
    SimDevice device(capacity);
    std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create(name, &device);
    PlacementDigestObserver in_process;
    ReplayTrace(trace, alloc.get(), &in_process);

    uint64_t c_digest = 0;
    ASSERT_EQ(stalloc_replay_digest(path.c_str(), name, capacity, nullptr, &c_digest), 0)
        << name << ": " << stalloc_last_error();
    EXPECT_EQ(c_digest, in_process.digest()) << name << " diverged across the C boundary";
  }
  std::remove(path.c_str());
}

// Options strings must change behavior, not just parse: a 64 KiB granularity tracks the same
// workload with a tighter reserved footprint than 2 MiB pages.
TEST(CAbi, GranularityOptionChangesFootprint) {
  auto reserved_peak = [](const char* options) {
    stalloc_handle* h = stalloc_create("vmm", 1 * GiB, options);
    EXPECT_NE(h, nullptr) << stalloc_last_error();
    const uint64_t a = stalloc_malloc(h, 3 * MiB + 512 * KiB, 0);
    EXPECT_NE(a, 0u);
    const size_t needed = stalloc_stats_json(h, nullptr, 0);
    std::vector<char> buf(needed + 1);
    stalloc_stats_json(h, buf.data(), buf.size());
    std::optional<Json> doc = Json::Parse(std::string(buf.data()));
    EXPECT_TRUE(doc.has_value());
    const uint64_t peak = doc->Find("reserved_peak")->AsUint();
    stalloc_destroy(h);
    return peak;
  };
  EXPECT_LT(reserved_peak("vmm.granularity=64KiB"), reserved_peak("vmm.granularity=2MiB"));
}

}  // namespace
}  // namespace stalloc
