#include "src/trainsim/workload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "src/trace/trace_stats.h"
#include "src/trainsim/model_config.h"

namespace stalloc {
namespace {

TrainConfig SmallConfig() {
  TrainConfig c;
  c.parallel.pp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 4;
  return c;
}

TEST(ModelConfigs, ParamCountsAreInExpectedRange) {
  // Sanity-check the sizing math against the models' nominal parameter counts (+-25%).
  EXPECT_NEAR(static_cast<double>(Gpt2_345M().TotalParams()), 345e6, 345e6 * 0.35);
  EXPECT_NEAR(static_cast<double>(Llama2_7B().TotalParams()), 6.7e9, 6.7e9 * 0.25);
  EXPECT_NEAR(static_cast<double>(Qwen25_14B().TotalParams()), 14.7e9, 14.7e9 * 0.25);
  EXPECT_NEAR(static_cast<double>(Qwen25_72B().TotalParams()), 72e9, 72e9 * 0.25);
  EXPECT_NEAR(static_cast<double>(Qwen15_MoE_A27B().TotalParams()), 14.3e9, 14.3e9 * 0.3);
}

TEST(ModelConfigs, LookupByName) {
  EXPECT_EQ(ModelByName("gpt2").name, "gpt2-345m");
  EXPECT_EQ(ModelByName("llama2-7b").name, "llama2-7b");
  EXPECT_TRUE(ModelByName("qwen1.5-moe").moe.enabled());
}

TEST(ModelConfigs, KnownModelNamesRoundTripThroughLookup) {
  // --list-models is the discovery path for the trace tool: every advertised name must resolve,
  // and every preset must be advertised (the lists are maintained by hand).
  const auto names = KnownModelNames();
  std::set<std::string> resolved;
  for (const std::string& name : names) {
    resolved.insert(ModelByName(name).name);  // aborts on unknown
  }
  EXPECT_EQ(resolved.size(), names.size()) << "duplicate or aliased entries";
  for (const ModelConfig& preset :
       {Gpt2_345M(), Llama2_7B(), Qwen25_7B(), Qwen25_14B(), Qwen25_32B(), Qwen25_72B(),
        Qwen15_MoE_A27B()}) {
    EXPECT_TRUE(resolved.count(preset.name)) << preset.name << " missing from KnownModelNames()";
  }
}

TEST(Workload, TraceIsValidAndBalanced) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  Trace trace = wb.Build(1);
  trace.Validate();
  EXPECT_GT(trace.size(), 100u);
  // Every phase window is sane.
  for (const auto& p : trace.phases()) {
    EXPECT_LE(p.start, p.end);
  }
}

TEST(Workload, SpatialRegularityFewDistinctSizes) {
  // Fig. 3: despite thousands of allocations there are only a few dozen distinct sizes.
  WorkloadBuilder wb(Llama2_7B(), SmallConfig());
  Trace trace = wb.Build(1);
  TraceStats stats = ComputeStats(trace);
  EXPECT_GT(trace.size(), 1000u);
  EXPECT_LE(stats.distinct_sizes, 64u);
  EXPECT_GE(stats.distinct_sizes, 8u);
}

TEST(Workload, AllThreeLifespanClassesPresent) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  Trace trace = wb.Build(1);
  TraceStats stats = ComputeStats(trace);
  EXPECT_GT(stats.persistent_count, 0u);
  EXPECT_GT(stats.scoped_count, 0u);
  EXPECT_GT(stats.transient_count, 0u);
}

TEST(Workload, RecomputationShrinksScopedAndPeak) {
  TrainConfig base = SmallConfig();
  WorkloadBuilder plain(Gpt2_345M(), base);
  TrainConfig rc = base;
  rc.opt.recompute = RecomputeMode::kFull;
  WorkloadBuilder recompute(Gpt2_345M(), rc);

  TraceStats s_plain = ComputeStats(plain.Build(1));
  TraceStats s_rc = ComputeStats(recompute.Build(1));
  EXPECT_LT(s_rc.scoped_bytes, s_plain.scoped_bytes);
  EXPECT_LT(s_rc.peak_allocated, s_plain.peak_allocated);
  // Recomputation *increases* the number of allocation events (§1: ~30% more requests).
  EXPECT_GT(s_rc.num_events, s_plain.num_events);
}

TEST(Workload, VirtualPipelineIncreasesPeak) {
  TrainConfig base = SmallConfig();
  TrainConfig vpp = base;
  vpp.parallel.vpp_chunks = 2;
  const uint64_t peak_plain = PeakAllocated(WorkloadBuilder(Gpt2_345M(), base).Build(1));
  const uint64_t peak_vpp = PeakAllocated(WorkloadBuilder(Gpt2_345M(), vpp).Build(1));
  EXPECT_GT(peak_vpp, peak_plain);  // §2.1: VPP trades memory for fewer bubbles
}

TEST(Workload, ZeroShardsOptimizerStates) {
  TrainConfig base = SmallConfig();
  base.parallel.dp = 4;
  TrainConfig zero = base;
  zero.opt.zero = ZeroStage::kStage1;
  TraceStats s_base = ComputeStats(WorkloadBuilder(Gpt2_345M(), base).Build(1));
  TraceStats s_zero = ComputeStats(WorkloadBuilder(Gpt2_345M(), zero).Build(1));
  EXPECT_LT(s_zero.persistent_bytes, s_base.persistent_bytes);
}

TEST(Workload, OffloadFreesActivationsInForward) {
  TrainConfig base = SmallConfig();
  TrainConfig off = base;
  off.opt.offload = true;
  TraceStats s_base = ComputeStats(WorkloadBuilder(Gpt2_345M(), base).Build(1));
  TraceStats s_off = ComputeStats(WorkloadBuilder(Gpt2_345M(), off).Build(1));
  EXPECT_LT(s_off.scoped_bytes, s_base.scoped_bytes);
  EXPECT_LT(s_off.peak_allocated, s_base.peak_allocated);
}

TEST(Workload, MoeEmitsDynamicEvents) {
  TrainConfig c = SmallConfig();
  c.micro_batch_size = 2;
  WorkloadBuilder wb(Qwen15_MoE_A27B(), c);
  Trace trace = wb.Build(1);
  TraceStats stats = ComputeStats(trace);
  EXPECT_GT(stats.num_dynamic, 0u);
  EXPECT_GT(stats.num_static, 0u);
  for (const auto& e : trace.events()) {
    if (e.dyn) {
      EXPECT_NE(e.ls, kInvalidLayer);
      EXPECT_NE(e.le, kInvalidLayer);
    }
  }
}

TEST(Workload, DenseModelsHaveNoDynamicEvents) {
  WorkloadBuilder wb(Llama2_7B(), SmallConfig());
  Trace trace = wb.Build(1);
  EXPECT_EQ(ComputeStats(trace).num_dynamic, 0u);
}

TEST(Workload, SeedChangesOnlyDynamicSizes) {
  TrainConfig c = SmallConfig();
  c.micro_batch_size = 2;
  WorkloadBuilder wb(Qwen15_MoE_A27B(), c);
  Trace t1 = wb.Build(1);
  Trace t2 = wb.Build(2);
  ASSERT_EQ(t1.size(), t2.size()) << "request structure must be iteration-invariant";
  bool some_dynamic_differs = false;
  for (size_t i = 0; i < t1.size(); ++i) {
    const auto& a = t1.event(i);
    const auto& b = t2.event(i);
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.te, b.te);
    EXPECT_EQ(a.dyn, b.dyn);
    if (!a.dyn) {
      EXPECT_EQ(a.size, b.size) << "static sizes must match across iterations";
    } else if (a.size != b.size) {
      some_dynamic_differs = true;
    }
  }
  EXPECT_TRUE(some_dynamic_differs);
}

TEST(Workload, SameSeedIsDeterministic) {
  TrainConfig c = SmallConfig();
  c.micro_batch_size = 2;
  WorkloadBuilder wb(Qwen15_MoE_A27B(), c);
  Trace t1 = wb.Build(7);
  Trace t2 = wb.Build(7);
  ASSERT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1.event(i).size, t2.event(i).size);
  }
}

TEST(Workload, LayersOfChunkFollowMegatronInterleaving) {
  TrainConfig c = SmallConfig();
  c.parallel.pp = 2;
  c.parallel.vpp_chunks = 2;
  c.rank = 0;
  WorkloadBuilder wb(Gpt2_345M(), c);  // 24 layers / (2*2) = 6 per chunk
  EXPECT_EQ(wb.LayersOfChunk(0).front(), 0);
  EXPECT_EQ(wb.LayersOfChunk(1).front(), 12);  // chunk 1 of rank 0 = model chunk 2
  TrainConfig c1 = c;
  c1.rank = 1;
  WorkloadBuilder wb1(Gpt2_345M(), c1);
  EXPECT_EQ(wb1.LayersOfChunk(0).front(), 6);
  EXPECT_EQ(wb1.LayersOfChunk(1).front(), 18);
  EXPECT_TRUE(wb.HasEmbedding());
  EXPECT_FALSE(wb.HasLmHead());
  EXPECT_TRUE(wb1.HasLmHead());
}

TEST(Workload, EstimateReportsPersistentAndInFlight) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  MemoryEstimate est = wb.Estimate();
  EXPECT_GT(est.persistent_bytes, 0u);
  EXPECT_GT(est.activation_bytes_per_mb, 0u);
  EXPECT_EQ(est.peak_in_flight, 2);  // pp=2, rank 0
}

// Parameterized sweep: the workload trace must be valid and balanced under every optimization
// combination the paper evaluates.
class WorkloadConfigSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadConfigSweep, TraceValidUnderConfigTag) {
  TrainConfig base = SmallConfig();
  base.parallel.dp = 2;
  TrainConfig c = ApplyConfigTag(base, GetParam());
  WorkloadBuilder wb(Gpt2_345M(), c);
  Trace trace = wb.Build(3);
  trace.Validate();
  TraceStats stats = ComputeStats(trace);
  EXPECT_GT(stats.peak_allocated, 0u);
  // Live bytes return to zero at the end of the iteration (nothing leaks).
  auto curve = LiveBytesCurve(trace.events());
  EXPECT_EQ(curve.back().second, 0u);
}

INSTANTIATE_TEST_SUITE_P(Tags, WorkloadConfigSweep,
                         ::testing::Values("N", "R", "V", "VR", "ZR", "ZOR"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace stalloc
