// Tests for src/telemetry/: the metrics registry, the span tracer (ring semantics, JSON
// escaping, concurrent emission — run under TSan in CI), the OOM flight recorder, and the two
// cross-cutting contracts the layer must keep:
//   * unified latency arming — latency histograms fill whenever telemetry is on, hook or not;
//   * determinism — tracing ON leaves ClusterResult::Digest() bit-identical (the serial golden
//     digest pinned in sharded_fleet_test must reproduce with spans flowing).

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/allocators/allocator.h"
#include "src/allocators/registry.h"
#include "src/api/session.h"
#include "src/api/spec.h"
#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/common/units.h"
#include "src/gpu/sim_device.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/tracer.h"

namespace stalloc {
namespace {

using telemetry::FlightOp;
using telemetry::FlightRecorder;
using telemetry::MetricsRegistry;
using telemetry::Tracer;

// Count non-overlapping occurrences of `needle` in `haystack`.
size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// Every test starts and ends with telemetry disabled and all global stores zeroed, so tests
// compose in one binary regardless of order. Instruments/tracks persist by design — only
// their values reset.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }

  static void ResetAll() {
    telemetry::SetEnabled(false);
    MetricsRegistry::Global().Reset();
    Tracer::Global().Clear();
    Tracer::Global().SetCapacity(1 << 16);
    FlightRecorder::Global().Drain();
    FlightRecorder::Global().SetLimit(32);
  }
};

TEST_F(TelemetryTest, CounterGaugeBasics) {
  telemetry::Counter* c = MetricsRegistry::Global().GetCounter("test.counter");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  // Find-or-create returns the same instrument for the same name.
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.counter"), c);

  telemetry::Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);

  MetricsRegistry::Global().Reset();
  EXPECT_EQ(c->value(), 0u);  // cached pointer survives Reset
  EXPECT_EQ(g->value(), 0);
}

TEST_F(TelemetryTest, HistogramBucketsAndSum) {
  telemetry::Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.hist", {1.0, 10.0, 100.0});
  h->Record(0.5);    // <= 1
  h->Record(1.0);    // <= 1 (inclusive upper bound)
  h->Record(5.0);    // <= 10
  h->Record(1000.0); // overflow
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 1006.5);
  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 0u);
  EXPECT_EQ(h->BucketCount(3), 1u);  // overflow bucket

  const std::string dump = MetricsRegistry::Global().ToJson().Dump(0);
  EXPECT_NE(dump.find("\"test.hist\""), std::string::npos);
  EXPECT_NE(dump.find("\"+Inf\""), std::string::npos);
  EXPECT_NE(dump.find("\"count\": 4"), std::string::npos);
}

TEST_F(TelemetryTest, RegistrySnapshotShape) {
  MetricsRegistry::Global().GetCounter("a.ops")->Add(3);
  MetricsRegistry::Global().GetGauge("a.depth")->Set(-2);
  const std::string dump = MetricsRegistry::Global().ToJson().Dump(0);
  EXPECT_NE(dump.find("\"counters\""), std::string::npos);
  EXPECT_NE(dump.find("\"gauges\""), std::string::npos);
  EXPECT_NE(dump.find("\"histograms\""), std::string::npos);
  EXPECT_NE(dump.find("\"a.ops\": 3"), std::string::npos);
  EXPECT_NE(dump.find("\"a.depth\": -2"), std::string::npos);
}

// Ring wraparound keeps the newest `capacity` events and counts the overwritten ones. The
// emitting thread is fresh so SetCapacity (which only applies to new tracks) takes effect.
TEST_F(TelemetryTest, RingKeepsNewestEventsOnWraparound) {
  telemetry::SetEnabled(true);
  Tracer::Global().SetCapacity(4);
  std::thread emitter([] {
    telemetry::TraceTrack* track = Tracer::Global().ThreadTrack();
    Tracer::Global().SetThreadName("wrap-emitter");
    for (int i = 0; i < 10; ++i) {
      track->Instant("wrap-ev-" + std::to_string(i), telemetry::kCatReplay,
                     Tracer::Global().NowUs());
    }
    EXPECT_EQ(track->size(), 4u);
    EXPECT_EQ(track->total(), 10u);
    EXPECT_EQ(track->dropped(), 6u);
  });
  emitter.join();

  EXPECT_EQ(Tracer::Global().DroppedEvents(), 6u);
  const std::string dump = Tracer::Global().ChromeTraceJson().Dump(0);
  // Newest four survive, oldest six are gone.
  for (int i = 6; i < 10; ++i) {
    EXPECT_NE(dump.find("wrap-ev-" + std::to_string(i)), std::string::npos) << i;
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(dump.find("wrap-ev-" + std::to_string(i)), std::string::npos) << i;
  }
  EXPECT_NE(dump.find("\"droppedEvents\": 6"), std::string::npos);
  EXPECT_NE(dump.find("wrap-emitter"), std::string::npos);  // thread_name metadata
}

// The tests below need emission points compiled in (the -DSTALLOC_TELEMETRY=OFF build turns
// Enabled() into a constant false, which is exactly what they'd observe).
#if STALLOC_TELEMETRY

// Span names flow into JSON verbatim — quotes, backslashes and control bytes must come out as
// valid JSON escapes, never raw.
TEST_F(TelemetryTest, ExportEscapesHostileSpanNames) {
  telemetry::SetEnabled(true);
  {
    telemetry::ScopedSpan span(telemetry::kCatSession, "quote\" back\\slash \n ctrl\x01 end");
    span.Arg("key\"with quote", Json("value\\with backslash"));
  }
  const std::string dump = Tracer::Global().ChromeTraceJson().Dump(0);
  EXPECT_NE(dump.find("quote\\\" back\\\\slash \\n ctrl\\u0001 end"), std::string::npos);
  EXPECT_NE(dump.find("key\\\"with quote"), std::string::npos);
  EXPECT_NE(dump.find("value\\\\with backslash"), std::string::npos);
  // No raw control byte or bare newline inside the compact dump's strings.
  EXPECT_EQ(dump.find('\x01'), std::string::npos);

  EXPECT_EQ(Json::Escape("a\"b\\c\nd\te\rf"), "a\\\"b\\\\c\\nd\\te\\rf");
  EXPECT_EQ(Json::Escape(std::string(1, '\x1f')), "\\u001f");
}

#endif  // STALLOC_TELEMETRY

// Disabled telemetry must be inert: spans allocate no track, instruments keep reading zero
// from the emission points' perspective (nothing is emitted).
TEST_F(TelemetryTest, DisabledTelemetryEmitsNothing) {
  ASSERT_FALSE(telemetry::Enabled());
  {
    telemetry::ScopedSpan span(telemetry::kCatSession, "should-not-appear");
    span.Arg("k", Json(1));
  }
  const std::string dump = Tracer::Global().ChromeTraceJson().Dump(0);
  EXPECT_EQ(dump.find("should-not-appear"), std::string::npos);
}

// Many threads emit into their own tracks while counters/histograms take concurrent updates;
// the export then sees every event. This is the test CI runs under TSan.
TEST_F(TelemetryTest, ConcurrentEmissionAcrossThreads) {
  telemetry::SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 500;
  telemetry::Counter* ops = MetricsRegistry::Global().GetCounter("cc.ops");
  telemetry::Histogram* lat = MetricsRegistry::Global().GetHistogram("cc.lat_us");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, ops, lat] {
      telemetry::TraceTrack* track = Tracer::Global().ThreadTrack();
      Tracer::Global().SetThreadName("cc-thread-" + std::to_string(t));
      for (int i = 0; i < kEventsPerThread; ++i) {
        track->Instant("cc-ev", telemetry::kCatShard, Tracer::Global().NowUs());
        ops->Add();
        lat->Record(static_cast<double>(i % 7));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  EXPECT_EQ(ops->value(), static_cast<uint64_t>(kThreads) * kEventsPerThread);
  EXPECT_EQ(lat->count(), static_cast<uint64_t>(kThreads) * kEventsPerThread);
  EXPECT_EQ(Tracer::Global().DroppedEvents(), 0u);
  const std::string dump = Tracer::Global().ChromeTraceJson().Dump(0);
  EXPECT_EQ(CountOccurrences(dump, "\"cc-ev\""),
            static_cast<size_t>(kThreads) * kEventsPerThread);
}

// === Determinism: tracing must not perturb the simulator ===

#if STALLOC_TELEMETRY

ClusterWorkloadConfig GoldenWorkload() {
  // Mirrors sharded_fleet_test's SmallMixedWorkload — the pinned serial golden digest below
  // is the same value pinned there; update both together or not at all.
  ClusterWorkloadConfig config;
  config.num_jobs = 6;
  config.train_fraction = 0.5;
  config.mean_interarrival = 800;
  config.micro_batches = {1, 2};
  config.num_microbatches = 2;
  config.max_pp = 2;
  config.min_iterations = 1;
  config.max_iterations = 2;
  config.serve_requests = 12;
  config.kv_budget_bytes = 1 * GiB;
  return config;
}

TEST_F(TelemetryTest, TracingLeavesClusterDigestBitIdentical) {
  const auto jobs = GenerateClusterWorkload(GoldenWorkload(), 21);
  FleetConfig fleet;
  fleet.device_capacities = {16 * GiB, 16 * GiB};
  fleet.policy = SchedulerPolicy::kFirstFit;
  fleet.allocator = AllocatorKind::kCaching;

  fleet.workers = 0;
  const std::string off_digest = RunCluster(fleet, jobs).Digest();

  telemetry::SetEnabled(true);
  EXPECT_EQ(RunCluster(fleet, jobs).Digest(), off_digest) << "serial digest moved under tracing";
  // The serial golden from sharded_fleet_test must reproduce with spans flowing.
  EXPECT_EQ(off_digest, "d6986ffe96219217");
  for (int workers : {2, 8}) {
    fleet.workers = workers;
    EXPECT_EQ(RunCluster(fleet, jobs).Digest(), off_digest)
        << "parallel digest moved under tracing at workers=" << workers;
  }
  EXPECT_GT(Tracer::Global().DroppedEvents() +
                MetricsRegistry::Global().GetCounter("cluster.windows")->value(),
            0u)
      << "tracing-enabled runs emitted nothing — the determinism check is vacuous";
}

// === End-to-end: a traced Session cluster run covers the subsystems ===

TEST_F(TelemetryTest, SessionClusterTraceCoversSubsystems) {
  telemetry::SetEnabled(true);

  ExperimentSpec spec;
  spec.axis = WorkloadAxis::kCluster;
  spec.devices = 2;
  spec.workers = 2;
  spec.options.capacity_bytes = 16ull * GiB;
  spec.options.run_seed = 7;
  spec.cluster.num_jobs = 4;
  spec.cluster.serve_requests = 16;

  Session session;
  const RunRecord rec = session.RunOne(spec, "torch-caching");
  EXPECT_TRUE(rec.ok());
  EXPECT_GT(rec.phases.total_ms, 0.0);
  EXPECT_GT(rec.phases.replay_ms, 0.0);  // the fleet day counts as replay

  const std::string dump = Tracer::Global().ChromeTraceJson().Dump(0);
  for (const char* cat : {telemetry::kCatSession, telemetry::kCatScheduler,
                          telemetry::kCatShard, telemetry::kCatAlloc, telemetry::kCatFleet}) {
    EXPECT_NE(dump.find("\"cat\": \"" + std::string(cat) + "\""), std::string::npos)
        << "no events from subsystem " << cat;
  }
}

// === OOM flight recorder ===

TEST_F(TelemetryTest, FlightRecorderCapturesOomPostMortem) {
  telemetry::SetEnabled(true);
  SimDevice device(64 * MiB);
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  ASSERT_NE(alloc, nullptr);

  // Enough traffic to wrap the 64-op flight ring, then a malloc that cannot fit.
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 50; ++i) {
    auto addr = alloc->Malloc(1024);
    ASSERT_TRUE(addr.has_value());
    addrs.push_back(*addr);
  }
  for (uint64_t addr : addrs) {
    ASSERT_TRUE(alloc->Free(addr));
  }
  EXPECT_FALSE(alloc->Malloc(256 * MiB).has_value());

  ASSERT_EQ(FlightRecorder::Global().pending(), 1u);
  std::vector<telemetry::OomReport> reports = FlightRecorder::Global().Drain();
  ASSERT_EQ(reports.size(), 1u);
  const telemetry::OomReport& r = reports[0];
  EXPECT_EQ(r.allocator, alloc->name());
  EXPECT_EQ(r.failed_size, 256 * MiB);
  EXPECT_EQ(r.num_mallocs, 51u);  // the failing attempt counts
  EXPECT_EQ(r.num_frees, 50u);
  EXPECT_EQ(r.num_oom, 1u);
  EXPECT_EQ(r.allocated, 0u);  // everything freed before the failing malloc
  ASSERT_FALSE(r.recent.empty());
  EXPECT_LE(r.recent.size(), telemetry::FlightRing::kDefaultCapacity);
  // The ring holds the newest window: the tail op is the OOM itself, preceded by frees.
  EXPECT_EQ(r.recent.back().kind, FlightOp::Kind::kOom);
  EXPECT_EQ(r.recent.back().size, 256 * MiB);
  EXPECT_EQ(r.recent[r.recent.size() - 2].kind, FlightOp::Kind::kFree);
  // Drained means drained.
  EXPECT_EQ(FlightRecorder::Global().pending(), 0u);
  EXPECT_TRUE(FlightRecorder::Global().Drain().empty());
}

#endif  // STALLOC_TELEMETRY

TEST_F(TelemetryTest, FlightRecorderEvictsPastLimit) {
  FlightRecorder::Global().SetLimit(2);
  for (int i = 0; i < 5; ++i) {
    telemetry::OomReport report;
    report.allocator = "alloc-" + std::to_string(i);
    FlightRecorder::Global().Report(std::move(report));
  }
  EXPECT_EQ(FlightRecorder::Global().pending(), 2u);
  EXPECT_EQ(FlightRecorder::Global().evicted(), 3u);
  const std::vector<telemetry::OomReport> reports = FlightRecorder::Global().Drain();
  ASSERT_EQ(reports.size(), 2u);
  // Oldest evicted, newest kept, oldest-first order preserved.
  EXPECT_EQ(reports[0].allocator, "alloc-3");
  EXPECT_EQ(reports[1].allocator, "alloc-4");
}

// === Unified latency arming: histograms fill with telemetry on, hook or no hook ===

#if STALLOC_TELEMETRY

TEST_F(TelemetryTest, LatencyHistogramsFillWithoutAHook) {
  telemetry::SetEnabled(true);
  SimDevice device(64 * MiB);
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  ASSERT_NE(alloc, nullptr);

  constexpr int kOps = 32;
  std::vector<uint64_t> addrs;
  for (int i = 0; i < kOps; ++i) {
    addrs.push_back(alloc->Malloc(4096).value());
  }
  for (uint64_t addr : addrs) {
    ASSERT_TRUE(alloc->Free(addr));
  }

  // The per-allocator stats latency accumulators armed without a hook...
  EXPECT_GT(alloc->stats().malloc_latency_us, 0.0);
  EXPECT_GT(alloc->stats().free_latency_us, 0.0);
  // ...and the registry histograms saw exactly the same ops.
  EXPECT_EQ(MetricsRegistry::Global().GetHistogram("alloc.malloc_latency_us")->count(),
            static_cast<uint64_t>(kOps));
  EXPECT_EQ(MetricsRegistry::Global().GetHistogram("alloc.free_latency_us")->count(),
            static_cast<uint64_t>(kOps));
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("alloc.mallocs")->value(),
            static_cast<uint64_t>(kOps));
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("alloc.bytes_allocated")->value(),
            static_cast<uint64_t>(kOps) * 4096);
}

#endif  // STALLOC_TELEMETRY

// With telemetry off and no hook, the hot path must stay untimed and unrecorded.
TEST_F(TelemetryTest, DisabledTelemetryLeavesAllocatorHotPathUntimed) {
  SimDevice device(64 * MiB);
  std::unique_ptr<Allocator> alloc = AllocatorRegistry::Global().Create("torch-caching", &device);
  ASSERT_NE(alloc, nullptr);
  const uint64_t addr = alloc->Malloc(4096).value();
  ASSERT_TRUE(alloc->Free(addr));
  EXPECT_EQ(alloc->stats().malloc_latency_us, 0.0);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("alloc.mallocs")->value(), 0u);
  EXPECT_EQ(FlightRecorder::Global().pending(), 0u);
}

}  // namespace
}  // namespace stalloc
