#include "src/core/size_group.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace stalloc {
namespace {

GroupRequest Req(size_t idx, uint64_t size, LogicalTime ts, LogicalTime te) {
  return GroupRequest{idx, size, ts, te};
}

TEST(PlanGlobally, DisjointSameSizeShareOneLayer) {
  // Algorithm 1: three time-disjoint requests of one size need exactly one memory-layer.
  std::vector<GroupRequest> reqs = {Req(0, 4096, 0, 10), Req(1, 4096, 10, 20),
                                    Req(2, 4096, 20, 30)};
  GlobalLayout layout = PlanGlobally(reqs);
  EXPECT_EQ(layout.layers.size(), 1u);
  EXPECT_EQ(layout.pool_size, 4096u);
  EXPECT_EQ(layout.request_addr[0], layout.request_addr[1]);
  EXPECT_EQ(layout.request_addr[1], layout.request_addr[2]);
}

TEST(PlanGlobally, OverlappingSameSizeNeedSeparateLayers) {
  std::vector<GroupRequest> reqs = {Req(0, 4096, 0, 10), Req(1, 4096, 5, 15),
                                    Req(2, 4096, 8, 20)};
  GlobalLayout layout = PlanGlobally(reqs);
  EXPECT_EQ(layout.layers.size(), 3u);
  EXPECT_EQ(layout.pool_size, 3 * 4096u);
}

TEST(PlanGlobally, LayerCountIsOptimalForSameSize) {
  // Algorithm 1 implements interval-partitioning greedy: layer count == max overlap depth.
  Rng rng(42);
  std::vector<GroupRequest> reqs;
  for (size_t i = 0; i < 100; ++i) {
    const LogicalTime ts = rng.NextBelow(1000);
    reqs.push_back(Req(i, 8192, ts, ts + 1 + rng.NextBelow(200)));
  }
  GlobalLayout layout = PlanGlobally(reqs);
  // Compute max overlap depth.
  std::vector<std::pair<LogicalTime, int>> points;
  for (const auto& r : reqs) {
    points.emplace_back(r.ts, +1);
    points.emplace_back(r.te, -1);
  }
  std::sort(points.begin(), points.end());
  int depth = 0;
  int max_depth = 0;
  for (auto& [t, d] : points) {
    depth += d;
    max_depth = std::max(max_depth, depth);
  }
  EXPECT_EQ(layout.layers.size(), static_cast<size_t>(max_depth));
}

TEST(PlanGlobally, SmallerRequestFillsLargerLayerGap) {
  // A large request occupies [0, 10); a small request [12, 14) fits into the same (larger)
  // layer's idle window instead of opening its own slot.
  std::vector<GroupRequest> reqs = {Req(0, 8192, 0, 10), Req(1, 512, 12, 14)};
  GlobalLayout layout = PlanGlobally(reqs, /*enable_gap_insertion=*/true);
  EXPECT_EQ(layout.layers.size(), 1u);
  EXPECT_EQ(layout.pool_size, 8192u);
  EXPECT_EQ(layout.request_addr[1], layout.request_addr[0]);

  GlobalLayout no_gaps = PlanGlobally(reqs, /*enable_gap_insertion=*/false);
  EXPECT_EQ(no_gaps.layers.size(), 2u);
  EXPECT_EQ(no_gaps.pool_size, 8192u + 512u);
}

TEST(PlanGlobally, OverlappingSmallerRequestCannotReuse) {
  std::vector<GroupRequest> reqs = {Req(0, 8192, 0, 10), Req(1, 512, 5, 8)};
  GlobalLayout layout = PlanGlobally(reqs);
  EXPECT_EQ(layout.layers.size(), 2u);
  EXPECT_EQ(layout.pool_size, 8192u + 512u);
}

TEST(PlanGlobally, LargestSizesSitAtLowAddresses) {
  std::vector<GroupRequest> reqs = {Req(0, 512, 0, 10), Req(1, 8192, 0, 10), Req(2, 2048, 0, 10)};
  GlobalLayout layout = PlanGlobally(reqs);
  EXPECT_EQ(layout.request_addr[1], 0u);          // largest first
  EXPECT_EQ(layout.request_addr[2], 8192u);       // then 2048
  EXPECT_EQ(layout.request_addr[0], 8192u + 2048u);
}

TEST(PlanGlobally, PicksSmallestSufficientLayerForGapInsertion) {
  // Two disjoint-size layers exist (8192 and 2048); a 512 request with a free window must go
  // into the 2048 layer (least wasted height).
  std::vector<GroupRequest> reqs = {Req(0, 8192, 0, 10), Req(1, 2048, 0, 10),
                                    Req(2, 512, 12, 14)};
  GlobalLayout layout = PlanGlobally(reqs);
  EXPECT_EQ(layout.layers.size(), 2u);
  EXPECT_EQ(layout.request_addr[2], layout.request_addr[1]);
}

// Property: no two requests placed at overlapping addresses with overlapping lifespans.
class PlanGloballyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanGloballyPropertyTest, NoConflictsAndBounded) {
  Rng rng(GetParam());
  std::vector<GroupRequest> reqs;
  const uint64_t sizes[] = {512, 1024, 4096, 4096, 8192, 65536};
  for (size_t i = 0; i < 120; ++i) {
    const LogicalTime ts = rng.NextBelow(500);
    reqs.push_back(
        Req(i, sizes[rng.NextBelow(std::size(sizes))], ts, ts + 1 + rng.NextBelow(150)));
  }
  GlobalLayout layout = PlanGlobally(reqs);
  ASSERT_EQ(layout.request_addr.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    for (size_t j = i + 1; j < reqs.size(); ++j) {
      const bool time = reqs[i].ts < reqs[j].te && reqs[j].ts < reqs[i].te;
      const bool addr = layout.request_addr[i] < layout.request_addr[j] + reqs[j].size &&
                        layout.request_addr[j] < layout.request_addr[i] + reqs[i].size;
      ASSERT_FALSE(time && addr) << "requests " << i << " and " << j << " conflict";
    }
  }
  // Pool is bounded by the no-sharing worst case.
  uint64_t worst = 0;
  for (const auto& r : reqs) {
    worst += r.size;
  }
  EXPECT_LE(layout.pool_size, worst);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanGloballyPropertyTest, ::testing::Values(5, 25, 125, 625));

}  // namespace
}  // namespace stalloc
