#include "src/allocators/caching_allocator.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace stalloc {
namespace {

class CachingAllocatorTest : public ::testing::Test {
 protected:
  SimDevice dev_{8 * GiB};
  CachingAllocator alloc_{&dev_};
};

TEST_F(CachingAllocatorTest, RoundSizeMatchesPyTorchRule) {
  EXPECT_EQ(alloc_.RoundSize(1), 512u);
  EXPECT_EQ(alloc_.RoundSize(512), 512u);
  EXPECT_EQ(alloc_.RoundSize(513), 1024u);
  EXPECT_EQ(alloc_.RoundSize(1 * MiB), 1 * MiB);
}

TEST_F(CachingAllocatorTest, SmallRequestReservesSmallBuffer) {
  auto a = alloc_.Malloc(4 * KiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc_.ReservedBytes(), 2 * MiB);  // kSmallBuffer segment
  EXPECT_EQ(alloc_.num_segments(), 1u);
}

TEST_F(CachingAllocatorTest, MidRequestReservesLargeBuffer) {
  auto a = alloc_.Malloc(2 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc_.ReservedBytes(), 20 * MiB);  // kLargeBuffer
}

TEST_F(CachingAllocatorTest, HugeRequestReservesRoundedExact) {
  auto a = alloc_.Malloc(33 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc_.ReservedBytes(), 34 * MiB);  // rounded up to 2 MiB multiple
}

TEST_F(CachingAllocatorTest, FreedBlockIsReused) {
  auto a = alloc_.Malloc(4 * MiB);
  ASSERT_TRUE(a.has_value());
  alloc_.Free(*a);
  auto b = alloc_.Malloc(4 * MiB);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(alloc_.num_segments(), 1u);  // no new segment
}

TEST_F(CachingAllocatorTest, SmallAllocationsPackIntoOneSegment) {
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 4; ++i) {
    auto a = alloc_.Malloc(256 * KiB);
    ASSERT_TRUE(a.has_value());
    addrs.push_back(*a);
  }
  EXPECT_EQ(alloc_.ReservedBytes(), 2 * MiB);  // 4 x 256 KiB fits one small segment
  for (auto a : addrs) {
    EXPECT_TRUE(alloc_.Free(a));
  }
}

TEST_F(CachingAllocatorTest, BestFitPrefersTightestBlock) {
  // Create two cached free blocks: 6 MiB and 3 MiB (in separate segments).
  auto big = alloc_.Malloc(16 * MiB);
  auto small = alloc_.Malloc(12 * MiB);
  ASSERT_TRUE(big.has_value() && small.has_value());
  alloc_.Free(*big);
  alloc_.Free(*small);
  // Request 11 MiB: must come from the 12 MiB block's address, not the 16 MiB one.
  auto c = alloc_.Malloc(11 * MiB);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, *small);
}

TEST_F(CachingAllocatorTest, CoalescingMergesNeighbours) {
  // Three adjacent blocks split from one 20 MiB segment.
  auto a = alloc_.Malloc(4 * MiB);
  auto b = alloc_.Malloc(4 * MiB);
  auto c = alloc_.Malloc(4 * MiB);
  ASSERT_TRUE(a.has_value() && b.has_value() && c.has_value());
  EXPECT_EQ(alloc_.num_segments(), 1u);
  alloc_.Free(*a);
  alloc_.Free(*c);
  alloc_.Free(*b);  // merges a+b+c (+ tail) back into one block
  // The whole segment should now be one free block: a 16 MiB request fits in place.
  auto d = alloc_.Malloc(16 * MiB);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, *a);
  EXPECT_EQ(alloc_.num_segments(), 1u);
}

TEST_F(CachingAllocatorTest, EmptyCacheReleasesFreeSegments) {
  auto a = alloc_.Malloc(4 * MiB);
  alloc_.Free(*a);
  EXPECT_GT(alloc_.ReservedBytes(), 0u);
  alloc_.EmptyCache();
  EXPECT_EQ(alloc_.ReservedBytes(), 0u);
  EXPECT_EQ(dev_.physical_used(), 0u);
}

TEST_F(CachingAllocatorTest, EmptyCacheKeepsLiveSegments) {
  auto a = alloc_.Malloc(4 * MiB);
  alloc_.EmptyCache();
  EXPECT_EQ(alloc_.ReservedBytes(), 20 * MiB);
  EXPECT_TRUE(alloc_.Free(*a));
}

TEST_F(CachingAllocatorTest, StatsTrackPeaks) {
  auto a = alloc_.Malloc(4 * MiB);
  auto b = alloc_.Malloc(4 * MiB);
  alloc_.Free(*a);
  alloc_.Free(*b);
  EXPECT_EQ(alloc_.stats().allocated_peak, 8 * MiB);
  EXPECT_EQ(alloc_.stats().allocated_current, 0u);
  EXPECT_EQ(alloc_.stats().num_mallocs, 2u);
  EXPECT_EQ(alloc_.stats().num_frees, 2u);
  EXPECT_LE(alloc_.stats().MemoryEfficiency(), 1.0);
}

TEST_F(CachingAllocatorTest, FreeUnknownAddressReturnsFalse) {
  EXPECT_FALSE(alloc_.Free(0xdeadbeef));
}

TEST(CachingAllocatorOom, ReleasesCacheAndRetries) {
  SimDevice dev(64 * MiB);
  CachingAllocator alloc(&dev);
  // Fill with a 40 MiB block, free it (stays cached), then ask for 60 MiB: the allocator must
  // release the cached segment to satisfy the request.
  auto a = alloc.Malloc(40 * MiB);
  ASSERT_TRUE(a.has_value());
  alloc.Free(*a);
  auto b = alloc.Malloc(60 * MiB);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(alloc.Free(*b));
}

TEST(CachingAllocatorOom, ReportsOomWhenTrulyFull) {
  SimDevice dev(64 * MiB);
  CachingAllocator alloc(&dev);
  auto a = alloc.Malloc(50 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(alloc.Malloc(50 * MiB).has_value());
  EXPECT_EQ(alloc.stats().num_oom, 1u);
}

TEST(CachingAllocatorFragmentation, InterleavedLifetimesFragment) {
  // The Fig. 1(a) scenario: interleave long- and short-lived blocks so freed space is
  // discontiguous; a large request then needs a fresh segment even though total free bytes
  // suffice. This is the fragmentation STAlloc eliminates.
  SimDevice dev(8 * GiB);
  CachingAllocator alloc(&dev);
  std::vector<uint64_t> keep;
  std::vector<uint64_t> drop;
  // 9 pairs: 18 blocks over 20 MiB segments (5 blocks each), so every segment keeps at least
  // one live block and no segment becomes fully free.
  for (int i = 0; i < 9; ++i) {
    auto a = alloc.Malloc(4 * MiB);  // long-lived
    auto b = alloc.Malloc(4 * MiB);  // short-lived
    ASSERT_TRUE(a.has_value() && b.has_value());
    keep.push_back(*a);
    drop.push_back(*b);
  }
  for (auto b : drop) {
    alloc.Free(b);
  }
  const uint64_t reserved_before = alloc.ReservedBytes();
  // Plenty of free bytes exist, but scattered in small holes: a 16 MiB request cannot fit.
  auto big = alloc.Malloc(16 * MiB);
  ASSERT_TRUE(big.has_value());
  EXPECT_GT(alloc.ReservedBytes(), reserved_before);
  EXPECT_LT(alloc.stats().MemoryEfficiency(), 1.0);
  for (auto a : keep) {
    alloc.Free(a);
  }
  alloc.Free(*big);
}

// Property test: random malloc/free storms never corrupt accounting, and everything can always
// be freed back.
class CachingAllocatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CachingAllocatorPropertyTest, RandomStorm) {
  SimDevice dev(4 * GiB);
  CachingAllocator alloc(&dev);
  Rng rng(GetParam());
  std::vector<uint64_t> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.NextBelow(100) < 55) {
      // Mix of small and large requests across the pool boundary.
      const uint64_t size = rng.NextBelow(100) < 50 ? 512 * (1 + rng.NextBelow(2048))
                                                    : MiB * (1 + rng.NextBelow(32));
      auto a = alloc.Malloc(size);
      if (a.has_value()) {
        live.push_back(*a);
      }
    } else {
      const size_t i = rng.NextBelow(live.size());
      ASSERT_TRUE(alloc.Free(live[i]));
      live[i] = live.back();
      live.pop_back();
    }
  }
  for (auto a : live) {
    ASSERT_TRUE(alloc.Free(a));
  }
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
  alloc.EmptyCache();
  EXPECT_EQ(alloc.ReservedBytes(), 0u);
  EXPECT_EQ(dev.physical_used(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachingAllocatorPropertyTest,
                         ::testing::Values(1, 7, 13, 99, 12345));

}  // namespace
}  // namespace stalloc
