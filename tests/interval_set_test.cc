#include "src/interval/interval_set.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace stalloc {
namespace {

TEST(IntervalSet, EmptyByDefault) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.TotalLength(), 0u);
  EXPECT_EQ(set.interval_count(), 0u);
  EXPECT_FALSE(set.Contains(0));
  EXPECT_FALSE(set.BestFit(1).has_value());
}

TEST(IntervalSet, InsertBasic) {
  IntervalSet set;
  set.Insert(10, 20);
  EXPECT_TRUE(set.Contains(10));
  EXPECT_TRUE(set.Contains(19));
  EXPECT_FALSE(set.Contains(20));
  EXPECT_FALSE(set.Contains(9));
  EXPECT_EQ(set.TotalLength(), 10u);
}

TEST(IntervalSet, InsertEmptyRangeIsNoop) {
  IntervalSet set;
  set.Insert(10, 10);
  set.Insert(20, 10);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, InsertMergesOverlapping) {
  IntervalSet set;
  set.Insert(10, 20);
  set.Insert(15, 30);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.TotalLength(), 20u);
  EXPECT_TRUE(set.Covers(10, 30));
}

TEST(IntervalSet, InsertMergesAdjacent) {
  IntervalSet set;
  set.Insert(10, 20);
  set.Insert(20, 30);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_TRUE(set.Covers(10, 30));
}

TEST(IntervalSet, InsertBridgesMultiple) {
  IntervalSet set;
  set.Insert(0, 10);
  set.Insert(20, 30);
  set.Insert(40, 50);
  set.Insert(5, 45);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_TRUE(set.Covers(0, 50));
}

TEST(IntervalSet, EraseSplitsInterval) {
  IntervalSet set;
  set.Insert(0, 100);
  set.Erase(40, 60);
  EXPECT_EQ(set.interval_count(), 2u);
  EXPECT_TRUE(set.Covers(0, 40));
  EXPECT_TRUE(set.Covers(60, 100));
  EXPECT_FALSE(set.Intersects(40, 60));
}

TEST(IntervalSet, EraseHead) {
  IntervalSet set;
  set.Insert(10, 20);
  set.Erase(0, 15);
  EXPECT_TRUE(set.Covers(15, 20));
  EXPECT_FALSE(set.Intersects(10, 15));
}

TEST(IntervalSet, EraseTail) {
  IntervalSet set;
  set.Insert(10, 20);
  set.Erase(15, 25);
  EXPECT_TRUE(set.Covers(10, 15));
  EXPECT_FALSE(set.Intersects(15, 20));
}

TEST(IntervalSet, EraseAcrossIntervals) {
  IntervalSet set;
  set.Insert(0, 10);
  set.Insert(20, 30);
  set.Insert(40, 50);
  set.Erase(5, 45);
  EXPECT_EQ(set.interval_count(), 2u);
  EXPECT_TRUE(set.Covers(0, 5));
  EXPECT_TRUE(set.Covers(45, 50));
}

TEST(IntervalSet, EraseExact) {
  IntervalSet set;
  set.Insert(10, 20);
  set.Erase(10, 20);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, IntersectsEdges) {
  IntervalSet set;
  set.Insert(10, 20);
  EXPECT_FALSE(set.Intersects(0, 10));   // touching below
  EXPECT_FALSE(set.Intersects(20, 30));  // touching above
  EXPECT_TRUE(set.Intersects(19, 25));
  EXPECT_TRUE(set.Intersects(5, 11));
  EXPECT_TRUE(set.Intersects(12, 15));
}

TEST(IntervalSet, CoversRequiresSingleSpan) {
  IntervalSet set;
  set.Insert(0, 10);
  set.Insert(10, 20);  // merged
  EXPECT_TRUE(set.Covers(0, 20));
  set.Erase(5, 6);
  EXPECT_FALSE(set.Covers(0, 20));
  EXPECT_TRUE(set.Covers(6, 20));
}

TEST(IntervalSet, UnionDisjoint) {
  IntervalSet a;
  a.Insert(0, 10);
  IntervalSet b;
  b.Insert(20, 30);
  IntervalSet u = a.Union(b);
  EXPECT_EQ(u.interval_count(), 2u);
  EXPECT_EQ(u.TotalLength(), 20u);
}

TEST(IntervalSet, IntersectBasic) {
  IntervalSet a;
  a.Insert(0, 100);
  IntervalSet b;
  b.Insert(50, 150);
  IntervalSet i = a.Intersect(b);
  EXPECT_EQ(i.interval_count(), 1u);
  EXPECT_TRUE(i.Covers(50, 100));
  EXPECT_EQ(i.TotalLength(), 50u);
}

TEST(IntervalSet, IntersectMultipleFragments) {
  IntervalSet a;
  a.Insert(0, 10);
  a.Insert(20, 30);
  a.Insert(40, 50);
  IntervalSet b;
  b.Insert(5, 45);
  IntervalSet i = a.Intersect(b);
  EXPECT_EQ(i.interval_count(), 3u);
  EXPECT_EQ(i.TotalLength(), 5u + 10u + 5u);
}

TEST(IntervalSet, DifferenceBasic) {
  IntervalSet a;
  a.Insert(0, 100);
  IntervalSet b;
  b.Insert(20, 40);
  b.Insert(60, 80);
  IntervalSet d = a.Difference(b);
  EXPECT_EQ(d.interval_count(), 3u);
  EXPECT_EQ(d.TotalLength(), 20u + 20u + 20u);
}

TEST(IntervalSet, ComplementWithin) {
  IntervalSet set;
  set.Insert(10, 20);
  set.Insert(30, 40);
  IntervalSet c = set.ComplementWithin(0, 50);
  EXPECT_EQ(c.interval_count(), 3u);
  EXPECT_TRUE(c.Covers(0, 10));
  EXPECT_TRUE(c.Covers(20, 30));
  EXPECT_TRUE(c.Covers(40, 50));
}

TEST(IntervalSet, BestFitPicksSmallestSufficient) {
  IntervalSet set;
  set.Insert(0, 100);    // len 100
  set.Insert(200, 230);  // len 30
  set.Insert(300, 340);  // len 40
  auto fit = set.BestFit(35);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->lo, 300u);
  fit = set.BestFit(10);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->lo, 200u);  // 30 is the tightest
  EXPECT_FALSE(set.BestFit(1000).has_value());
}

TEST(IntervalSet, FirstFitPicksLowestAddress) {
  IntervalSet set;
  set.Insert(100, 130);
  set.Insert(0, 10);
  auto fit = set.FirstFit(5);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->lo, 0u);
  fit = set.FirstFit(20);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->lo, 100u);
}

// ----- targeted edge cases: adjacency, zero-length operations, whole-range frees -----

TEST(IntervalSet, AdjacentInsertsMergeFromBothSides) {
  IntervalSet set;
  set.Insert(20, 30);
  set.Insert(10, 20);  // adjacent below
  set.Insert(30, 40);  // adjacent above
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_TRUE(set.Covers(10, 40));
  // Exactly plugging a hole must also collapse to one span.
  set.Erase(20, 30);
  EXPECT_EQ(set.interval_count(), 2u);
  set.Insert(20, 30);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.TotalLength(), 30u);
}

TEST(IntervalSet, ZeroLengthInsertInsideExistingSpanIsNoop) {
  IntervalSet set;
  set.Insert(10, 20);
  set.Insert(15, 15);  // zero-length, interior
  set.Insert(10, 10);  // zero-length, at the left edge
  set.Insert(20, 20);  // zero-length, at the right edge
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.TotalLength(), 10u);
  EXPECT_EQ(set.ToVector(), (std::vector<Interval>{{10, 20}}));
}

TEST(IntervalSet, ZeroLengthEraseIsNoop) {
  IntervalSet set;
  set.Insert(10, 20);
  set.Erase(15, 15);
  set.Erase(10, 10);
  set.Erase(20, 20);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_TRUE(set.Covers(10, 20));
}

TEST(IntervalSet, FreeOfEntireRangeAcrossManySpans) {
  // The free-the-whole-arena pattern of SimDevice teardown: one erase spanning everything.
  IntervalSet set;
  set.Insert(0, 10);
  set.Insert(20, 30);
  set.Insert(40, 50);
  set.Erase(0, 50);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.TotalLength(), 0u);
  EXPECT_FALSE(set.BestFit(1).has_value());
  // Erasing from an already-empty set stays a no-op.
  set.Erase(0, 50);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, EraseSupersetOfSingleSpan) {
  IntervalSet set;
  set.Insert(10, 20);
  set.Erase(0, 100);  // strict superset
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, BestFitExactSizeMatch) {
  IntervalSet set;
  set.Insert(0, 10);
  set.Insert(100, 132);
  auto fit = set.BestFit(32);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->lo, 100u);
  EXPECT_EQ(fit->length(), 32u);
}

TEST(IntervalSet, CoversAndIntersectsOnEmptyQueryRange) {
  IntervalSet set;
  set.Insert(10, 20);
  // Half-open [x, x) is empty: trivially covered, never intersecting.
  EXPECT_TRUE(set.Covers(15, 15));
  EXPECT_FALSE(set.Intersects(15, 15));
}

TEST(IntervalSet, MaxIntervalLength) {
  IntervalSet set;
  EXPECT_EQ(set.MaxIntervalLength(), 0u);
  set.Insert(0, 10);
  set.Insert(20, 50);
  EXPECT_EQ(set.MaxIntervalLength(), 30u);
}

// ----- property tests: IntervalSet vs a dense boolean reference model -----

class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetPropertyTest, MatchesReferenceModel) {
  constexpr uint64_t kUniverse = 256;
  Rng rng(GetParam());
  IntervalSet set;
  std::vector<bool> model(kUniverse, false);

  for (int step = 0; step < 500; ++step) {
    const uint64_t lo = rng.NextBelow(kUniverse);
    const uint64_t hi = lo + rng.NextBelow(kUniverse - lo + 1);
    if (rng.NextBelow(2) == 0) {
      set.Insert(lo, hi);
      for (uint64_t i = lo; i < hi; ++i) {
        model[i] = true;
      }
    } else {
      set.Erase(lo, hi);
      for (uint64_t i = lo; i < hi; ++i) {
        model[i] = false;
      }
    }
    // Compare total length and membership at probe points.
    uint64_t expected_total = 0;
    for (bool b : model) {
      expected_total += b ? 1 : 0;
    }
    ASSERT_EQ(set.TotalLength(), expected_total) << "step " << step;
    for (int probe = 0; probe < 16; ++probe) {
      const uint64_t p = rng.NextBelow(kUniverse);
      ASSERT_EQ(set.Contains(p), model[p]) << "step " << step << " point " << p;
    }
    // Invariant: intervals disjoint, sorted, non-adjacent.
    auto intervals = set.ToVector();
    for (size_t i = 1; i < intervals.size(); ++i) {
      ASSERT_GT(intervals[i].lo, intervals[i - 1].hi);
    }
  }
}

TEST_P(IntervalSetPropertyTest, SetAlgebraConsistency) {
  constexpr uint64_t kUniverse = 128;
  Rng rng(GetParam() * 7919 + 13);
  auto random_set = [&]() {
    IntervalSet s;
    for (int i = 0; i < 8; ++i) {
      const uint64_t lo = rng.NextBelow(kUniverse);
      const uint64_t hi = lo + rng.NextBelow(kUniverse - lo + 1);
      s.Insert(lo, hi);
    }
    return s;
  };
  for (int round = 0; round < 50; ++round) {
    IntervalSet a = random_set();
    IntervalSet b = random_set();
    IntervalSet i = a.Intersect(b);
    IntervalSet u = a.Union(b);
    IntervalSet d = a.Difference(b);
    // |A| + |B| = |A∪B| + |A∩B|.
    ASSERT_EQ(a.TotalLength() + b.TotalLength(), u.TotalLength() + i.TotalLength());
    // |A\B| = |A| - |A∩B|.
    ASSERT_EQ(d.TotalLength(), a.TotalLength() - i.TotalLength());
    // (A\B) ∩ B = ∅.
    ASSERT_EQ(d.Intersect(b).TotalLength(), 0u);
    // Complement: |A| + |¬A| = universe.
    IntervalSet c = a.ComplementWithin(0, kUniverse);
    ASSERT_EQ(a.TotalLength() + c.TotalLength(), kUniverse);
    ASSERT_EQ(a.Intersect(c).TotalLength(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest, ::testing::Values(1, 2, 3, 42, 1234));

}  // namespace
}  // namespace stalloc
