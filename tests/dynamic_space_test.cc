#include "src/core/dynamic_space.h"

#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

// Hand-built scenario: one static block occupying [0, 1024) during [0, 10), another occupying
// [1024, 2048) during [20, 30). A dynamic group whose window is [12, 18) must see the whole pool
// as reusable; one whose window is [5, 25) must see nothing.
TEST(DynamicSpace, WindowedComplementOfStaticPlan) {
  Trace t;
  PhaseId p = t.AddPhase({PhaseKind::kForward, 0, 0, 0, 40});
  LayerId mid_a = t.AddLayer({"mid_a", 12, 15});
  LayerId mid_b = t.AddLayer({"mid_b", 15, 18});
  LayerId wide_a = t.AddLayer({"wide_a", 5, 8});
  LayerId wide_b = t.AddLayer({"wide_b", 22, 25});

  MemoryEvent s1;
  s1.size = 1024;
  s1.ts = 0;
  s1.te = 10;
  s1.ps = p;
  s1.pe = p;
  const uint64_t id1 = t.AddEvent(s1);
  MemoryEvent s2 = s1;
  s2.ts = 20;
  s2.te = 30;
  const uint64_t id2 = t.AddEvent(s2);

  MemoryEvent dyn_mid;
  dyn_mid.size = 256;
  dyn_mid.ts = 13;
  dyn_mid.te = 16;
  dyn_mid.ps = p;
  dyn_mid.pe = p;
  dyn_mid.dyn = true;
  dyn_mid.ls = mid_a;
  dyn_mid.le = mid_b;
  t.AddEvent(dyn_mid);

  MemoryEvent dyn_wide = dyn_mid;
  dyn_wide.ts = 6;
  dyn_wide.te = 24;
  dyn_wide.ls = wide_a;
  dyn_wide.le = wide_b;
  t.AddEvent(dyn_wide);

  StaticPlan plan;
  plan.decisions.push_back({t.event(id1), 0, 1024});
  plan.decisions.push_back({t.event(id2), 1024, 1024});
  plan.pool_size = 2048;

  DynamicReusableSpace space = LocateDynamicSpace(t, plan);
  ASSERT_EQ(space.group_count(), 2u);

  // Window [12, 18): neither static block is live -> the whole pool is reusable.
  const IntervalSet& mid = space.regions.at({mid_a, mid_b});
  EXPECT_EQ(mid.TotalLength(), 2048u);

  // Window [5, 25): overlaps both static lifespans -> nothing reusable.
  const IntervalSet& wide = space.regions.at({wide_a, wide_b});
  EXPECT_EQ(wide.TotalLength(), 0u);
}

TEST(DynamicSpace, ExpectedLeTableFollowsArrivalOrder) {
  Trace t;
  PhaseId p = t.AddPhase({PhaseKind::kForward, 0, 0, 0, 40});
  LayerId l0 = t.AddLayer({"l0", 0, 10});
  LayerId l1 = t.AddLayer({"l1", 10, 20});
  for (int i = 0; i < 3; ++i) {
    MemoryEvent e;
    e.size = 512;
    e.ts = static_cast<LogicalTime>(1 + i);
    e.te = static_cast<LogicalTime>(12 + i);
    e.ps = p;
    e.pe = p;
    e.dyn = true;
    e.ls = l0;
    e.le = i == 1 ? l0 : l1;  // second request frees within its own layer
    t.AddEvent(e);
  }
  StaticPlan plan;
  plan.pool_size = 4096;
  DynamicReusableSpace space = LocateDynamicSpace(t, plan);
  ASSERT_EQ(space.expected_le.at(l0).size(), 3u);
  EXPECT_EQ(space.expected_le.at(l0)[0], l1);
  EXPECT_EQ(space.expected_le.at(l0)[1], l0);
  EXPECT_EQ(space.expected_le.at(l0)[2], l1);
}

// Invariant on real MoE workloads: a group's reusable region never intersects any static
// decision whose lifespan overlaps the group's window.
TEST(DynamicSpace, ReusableRegionsNeverConflictWithStatics) {
  TrainConfig c;
  c.parallel.pp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 2;
  c.opt.recompute = RecomputeMode::kFull;
  WorkloadBuilder wb(Qwen15_MoE_A27B(), c);
  Trace trace = wb.Build(5);
  SynthesisResult r = SynthesizePlan(trace);
  ASSERT_GT(r.dyn_space.group_count(), 0u);

  for (const auto& [key, region] : r.dyn_space.regions) {
    const LayerInfo& a = trace.layer(key.first);
    const LayerInfo& b = trace.layer(key.second);
    for (const auto& d : r.plan.decisions) {
      const bool time_overlap = d.event.ts < b.end && a.start < d.event.te;
      if (time_overlap) {
        EXPECT_FALSE(region.Intersects(d.addr, d.end_addr()))
            << "group (" << key.first << "," << key.second << ") reuses addresses of live static "
            << "event " << d.event.id;
      }
    }
  }
}

TEST(DynamicSpace, RecomputeYieldsMoreReusableSpaceThanNoRecompute) {
  // §9.4: with recomputation, dynamic requests live within one layer and static activations are
  // short-lived, so idle windows in the static pool are plentiful. Without recomputation the
  // lifespans fully overlap and little can be reused.
  TrainConfig c;
  c.parallel.pp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 2;
  WorkloadBuilder plain(Qwen15_MoE_A27B(), c);
  TrainConfig rc = c;
  rc.opt.recompute = RecomputeMode::kFull;
  WorkloadBuilder recompute(Qwen15_MoE_A27B(), rc);

  SynthesisResult r_plain = SynthesizePlan(plain.Build(5));
  SynthesisResult r_rc = SynthesizePlan(recompute.Build(5));
  // Normalize by pool size x group count to compare densities.
  const double density_plain =
      static_cast<double>(r_plain.dyn_space.TotalReusableBytes()) /
      (static_cast<double>(r_plain.plan.pool_size) *
       static_cast<double>(std::max<size_t>(1, r_plain.dyn_space.group_count())));
  const double density_rc =
      static_cast<double>(r_rc.dyn_space.TotalReusableBytes()) /
      (static_cast<double>(r_rc.plan.pool_size) *
       static_cast<double>(std::max<size_t>(1, r_rc.dyn_space.group_count())));
  EXPECT_GT(density_rc, density_plain);
}

TEST(DynamicSpace, MoreHomoLayerGroupsWithoutRecompute) {
  // Table 2 discussion: without recomputation, (ls, le) pairs span forward->backward layers and
  // there are more distinct groups than with recomputation (where ls == le).
  TrainConfig c;
  c.parallel.pp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 2;
  WorkloadBuilder plain(Qwen15_MoE_A27B(), c);
  TrainConfig rc = c;
  rc.opt.recompute = RecomputeMode::kFull;
  WorkloadBuilder recompute(Qwen15_MoE_A27B(), rc);
  SynthesisResult r_plain = SynthesizePlan(plain.Build(5));
  SynthesisResult r_rc = SynthesizePlan(recompute.Build(5));
  EXPECT_GT(r_plain.dyn_space.group_count(), 0u);
  EXPECT_GT(r_rc.dyn_space.group_count(), 0u);
  EXPECT_GE(r_plain.dyn_space.group_count(), r_rc.dyn_space.group_count());
}

}  // namespace
}  // namespace stalloc
