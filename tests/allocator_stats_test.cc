// Coverage for the instrumented Allocator interface (src/allocators/allocator.h): the built-in
// AllocatorStats counters (bytes moved, per-op latency) and the AllocatorStatsHook per-op
// observer — the instrumentation every driver now reads instead of keeping its own counters.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/allocators/caching_allocator.h"
#include "src/allocators/native_allocator.h"
#include "src/common/units.h"
#include "src/gpu/sim_device.h"

namespace stalloc {
namespace {

class RecordingHook : public AllocatorStatsHook {
 public:
  struct Op {
    char kind;  // 'm', 'f', 'o'
    uint64_t size;
    double latency_us;
    AllocatorSnapshot after;
  };
  void OnMalloc(uint64_t size, double latency_us, const AllocatorSnapshot& after) override {
    ops.push_back({'m', size, latency_us, after});
  }
  void OnFree(uint64_t size, double latency_us, const AllocatorSnapshot& after) override {
    ops.push_back({'f', size, latency_us, after});
  }
  void OnOom(uint64_t size, const AllocatorSnapshot& at) override {
    ops.push_back({'o', size, 0, at});
  }
  std::vector<Op> ops;
};

TEST(AllocatorStats, BytesMovedAccumulateWithoutAHook) {
  SimDevice dev(1 * GiB);
  NativeAllocator alloc(&dev);
  auto a = alloc.Malloc(10 * MiB);
  auto b = alloc.Malloc(6 * MiB);
  ASSERT_TRUE(a.has_value() && b.has_value());
  alloc.Free(*a);

  const AllocatorStats& s = alloc.stats();
  EXPECT_EQ(s.bytes_allocated_total, 16 * MiB);
  EXPECT_EQ(s.bytes_freed_total, 10 * MiB);
  EXPECT_EQ(s.allocated_current, 6 * MiB);
  EXPECT_EQ(s.live_blocks, 1u);
  // Latency measurement stays off while nobody listens.
  EXPECT_EQ(s.malloc_latency_us, 0.0);
  EXPECT_EQ(s.free_latency_us, 0.0);
}

TEST(AllocatorStats, HookSeesEveryOpWithConsistentSnapshots) {
  SimDevice dev(1 * GiB);
  CachingAllocator alloc(&dev);
  RecordingHook hook;
  alloc.SetStatsHook(&hook);

  auto a = alloc.Malloc(8 * MiB);
  auto b = alloc.Malloc(3 * MiB);
  ASSERT_TRUE(a.has_value() && b.has_value());
  alloc.Free(*a);
  alloc.Free(*b);

  ASSERT_EQ(hook.ops.size(), 4u);
  EXPECT_EQ(hook.ops[0].kind, 'm');
  EXPECT_EQ(hook.ops[0].size, 8 * MiB);
  EXPECT_EQ(hook.ops[0].after.allocated, 8 * MiB);
  EXPECT_EQ(hook.ops[1].after.allocated, 11 * MiB);
  EXPECT_EQ(hook.ops[2].kind, 'f');
  EXPECT_EQ(hook.ops[2].after.allocated, 3 * MiB);
  EXPECT_EQ(hook.ops[3].after.allocated, 0u);
  for (size_t i = 0; i < hook.ops.size(); ++i) {
    EXPECT_GE(hook.ops[i].latency_us, 0.0) << i;
    EXPECT_EQ(hook.ops[i].after.op_index, i + 1) << i;
    EXPECT_GE(hook.ops[i].after.reserved, hook.ops[i].after.allocated) << i;
    EXPECT_GE(hook.ops[i].after.Fragmentation(), 0.0) << i;
  }
  // While the hook is installed, per-op wall time accumulates into the shared stats.
  EXPECT_GT(alloc.stats().malloc_latency_us, 0.0);
  EXPECT_GT(alloc.stats().free_latency_us, 0.0);
}

TEST(AllocatorStats, HookObservesOomAndClearingStopsDelivery) {
  SimDevice dev(16 * MiB);
  NativeAllocator alloc(&dev);
  RecordingHook hook;
  alloc.SetStatsHook(&hook);

  EXPECT_FALSE(alloc.Malloc(64 * MiB).has_value());
  ASSERT_EQ(hook.ops.size(), 1u);
  EXPECT_EQ(hook.ops[0].kind, 'o');
  EXPECT_EQ(hook.ops[0].size, 64 * MiB);
  EXPECT_EQ(alloc.stats().num_oom, 1u);

  alloc.SetStatsHook(nullptr);
  auto a = alloc.Malloc(1 * MiB);
  ASSERT_TRUE(a.has_value());
  alloc.Free(*a);
  EXPECT_EQ(hook.ops.size(), 1u);  // no further deliveries after the hook is cleared
}

TEST(AllocatorStats, EfficiencyAndFragmentationDeriveFromPeaks) {
  AllocatorStats s;
  s.allocated_peak = 3 * GiB;
  s.reserved_peak = 4 * GiB;
  EXPECT_DOUBLE_EQ(s.MemoryEfficiency(), 0.75);
  EXPECT_DOUBLE_EQ(s.FragmentationRatio(), 0.25);
  EXPECT_EQ(s.FragmentationBytes(), 1 * GiB);
  AllocatorStats empty;
  EXPECT_DOUBLE_EQ(empty.MemoryEfficiency(), 1.0);
  EXPECT_EQ(empty.FragmentationBytes(), 0u);
}

}  // namespace
}  // namespace stalloc
