#include "src/core/compaction.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/core/planner.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

PlanDecision Dec(uint64_t id, uint64_t size, LogicalTime ts, LogicalTime te, uint64_t addr) {
  PlanDecision d;
  d.event.id = id;
  d.event.size = size;
  d.event.ts = ts;
  d.event.te = te;
  d.addr = addr;
  d.padded_size = AlignUp(size, kPlanAlign);
  return d;
}

TEST(Compaction, EmptyPlanIsNoop) {
  CompactionResult r = CompactPlan(StaticPlan{});
  EXPECT_EQ(r.plan.pool_size, 0u);
  EXPECT_EQ(r.moves, 0u);
}

TEST(Compaction, LowersFloatingBlock) {
  // A block parked needlessly high comes down to offset 0.
  StaticPlan plan;
  plan.decisions.push_back(Dec(0, 512, 0, 10, 4096));
  plan.pool_size = 4608;
  CompactionResult r = CompactPlan(plan);
  EXPECT_EQ(r.plan.decisions[0].addr, 0u);
  EXPECT_EQ(r.plan.pool_size, 512u);
  EXPECT_EQ(r.moves, 1u);
}

TEST(Compaction, RespectsTimeConflicts) {
  // Two overlapping blocks cannot share; two disjoint ones collapse onto offset 0.
  StaticPlan plan;
  plan.decisions.push_back(Dec(0, 512, 0, 10, 0));
  plan.decisions.push_back(Dec(1, 512, 5, 15, 1024));   // overlaps 0: stays above
  plan.decisions.push_back(Dec(2, 512, 20, 30, 2048));  // disjoint: drops to 0
  plan.pool_size = 4096;
  CompactionResult r = CompactPlan(plan);
  std::string error;
  EXPECT_TRUE(r.plan.Check(&error)) << error;
  EXPECT_EQ(r.plan.pool_size, 1024u);
  // Decision order is preserved; find event 2 and check it dropped.
  for (const auto& d : r.plan.decisions) {
    if (d.event.id == 2) {
      EXPECT_EQ(d.addr, 0u);
    }
  }
}

TEST(Compaction, NeverIncreasesPool) {
  Rng rng(99);
  StaticPlan plan;
  uint64_t top = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    const LogicalTime ts = rng.NextBelow(500);
    const uint64_t size = 512 * (1 + rng.NextBelow(16));
    // Stack everything disjointly in address space (valid but wasteful).
    plan.decisions.push_back(Dec(i, size, ts, ts + 1 + rng.NextBelow(100), top));
    top += AlignUp(size, kPlanAlign);
  }
  plan.pool_size = top;
  plan.Validate();
  CompactionResult r = CompactPlan(plan);
  EXPECT_LE(r.plan.pool_size, plan.pool_size);
  EXPECT_GE(r.plan.pool_size, StaticPlan::PeakPaddedBytes(plan.decisions));
  std::string error;
  EXPECT_TRUE(r.plan.Check(&error)) << error;
}

TEST(Compaction, SynthesizedPlansAreAlreadyTight) {
  // The fast synthesizer should leave (almost) nothing for the slow baseline to reclaim.
  TrainConfig c;
  c.parallel.pp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 4;
  c.opt.recompute = RecomputeMode::kFull;
  WorkloadBuilder wb(Gpt2_345M(), c);
  SynthesisResult s = SynthesizePlan(wb.Build(1));
  CompactionResult r = CompactPlan(s.plan);
  EXPECT_LE(static_cast<double>(s.plan.pool_size),
            static_cast<double>(r.plan.pool_size) * 1.05)
      << "compaction found >5% slack in the synthesized plan";
}

}  // namespace
}  // namespace stalloc
