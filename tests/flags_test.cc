// FlagParser: value conversion, byte-size suffixes, lists, presence flags, positionals,
// Seen() tracking and error rejection.

#include "src/common/flags.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace stalloc {
namespace {

// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("test"));
    for (std::string& s : storage_) {
      ptrs_.push_back(s.data());
    }
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Flags, ParsesEveryValueKind) {
  std::string name;
  int count = 0;
  uint64_t seed = 0;
  uint32_t requests = 0;
  double fraction = 0;
  uint64_t capacity = 0;
  bool verbose = false;

  FlagParser flags("test");
  flags.Add("--name", &name, "NAME", "");
  flags.Add("--count", &count, "N", "");
  flags.Add("--seed", &seed, "N", "");
  flags.Add("--requests", &requests, "N", "");
  flags.Add("--fraction", &fraction, "F", "");
  flags.AddBytes("--capacity", &capacity, "BYTES", "");
  flags.AddFlag("--verbose", &verbose, "");

  Argv argv({"--name", "gpt2", "--count", "-3", "--seed", "42", "--requests", "7",
             "--fraction", "0.25", "--capacity", "16G", "--verbose"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(name, "gpt2");
  EXPECT_EQ(count, -3);
  EXPECT_EQ(seed, 42u);
  EXPECT_EQ(requests, 7u);
  EXPECT_DOUBLE_EQ(fraction, 0.25);
  EXPECT_EQ(capacity, 16ull * GiB);
  EXPECT_TRUE(verbose);
}

TEST(Flags, DefaultsSurviveWhenNotSupplied) {
  int count = 11;
  bool verbose = false;
  FlagParser flags("test");
  flags.Add("--count", &count, "N", "");
  flags.AddFlag("--verbose", &verbose, "");
  Argv argv({});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(count, 11);
  EXPECT_FALSE(verbose);
  EXPECT_FALSE(flags.Seen("--count"));
}

TEST(Flags, ByteListAndStringList) {
  std::vector<uint64_t> capacities;
  std::vector<std::string> allocs;
  FlagParser flags("test");
  flags.AddBytesList("--capacity", &capacities, "LIST", "");
  flags.AddList("--alloc", &allocs, "LIST", "");
  Argv argv({"--capacity", "16G,512M,1024", "--alloc", "torch-caching,stalloc"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  ASSERT_EQ(capacities.size(), 3u);
  EXPECT_EQ(capacities[0], 16ull * GiB);
  EXPECT_EQ(capacities[1], 512ull * MiB);
  EXPECT_EQ(capacities[2], 1024u);
  ASSERT_EQ(allocs.size(), 2u);
  EXPECT_EQ(allocs[0], "torch-caching");
  EXPECT_EQ(allocs[1], "stalloc");
}

TEST(Flags, RejectsUnknownFlagsAndBadValues) {
  int count = 0;
  uint64_t capacity = 0;
  FlagParser flags("test");
  flags.Add("--count", &count, "N", "");
  flags.AddBytes("--capacity", &capacity, "BYTES", "");

  {
    Argv argv({"--no-such-flag"});
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
  {
    Argv argv({"--count", "twelve"});
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
  {
    Argv argv({"--capacity", "16Q"});
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
  {
    Argv argv({"--count"});  // missing value
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
  {
    Argv argv({"--capacity", "16G,"});  // trailing comma in a scalar-bytes flag
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
}

TEST(Flags, NumericFlagsRejectOutOfRangeInput) {
  // Truncation is never acceptable: a value that does not fit the bound type must error.
  int count = 0;
  uint32_t requests = 0;
  uint64_t events = 0;
  FlagParser flags("test");
  flags.Add("--count", &count, "N", "");
  flags.Add("--requests", &requests, "N", "");
  flags.Add("--events", &events, "N", "");
  {
    Argv argv({"--count", "4294967298"});  // 2^32 + 2 would truncate to 2
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
  {
    Argv argv({"--requests", "4294967296"});  // 2^32 would wrap to 0
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
  {
    Argv argv({"--events", "18446744073709551617"});  // 2^64 + 1 would saturate
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
  {
    Argv argv({"--count", "2147483647"});  // INT_MAX parses fine
    EXPECT_TRUE(flags.Parse(argv.argc(), argv.argv()));
    EXPECT_EQ(count, 2147483647);
  }
}

TEST(Flags, UnsignedFlagsRejectNegativeInput) {
  // strtoull would wrap "-1" to 2^64-1; the parser must reject it instead.
  uint64_t events = 0;
  uint32_t requests = 0;
  FlagParser flags("test");
  flags.Add("--events", &events, "N", "");
  flags.Add("--requests", &requests, "N", "");
  {
    Argv argv({"--events", "-1"});
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
  {
    Argv argv({"--requests", "-5"});
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
}

TEST(Flags, ListsRejectEmptyItems) {
  std::vector<std::string> allocs;
  std::vector<uint64_t> capacities;
  FlagParser flags("test");
  flags.AddList("--alloc", &allocs, "LIST", "");
  flags.AddBytesList("--capacity", &capacities, "LIST", "");
  {
    Argv argv({"--alloc", "a,,b"});
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
  {
    Argv argv({"--capacity", "16G,,1M"});
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
  {
    Argv argv({"--capacity", "16G,"});
    EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
  }
}

TEST(Flags, PositionalsAndSeen) {
  std::string trace;
  std::string out;
  FlagParser flags("test");
  flags.AddPositional(&trace, "TRACE", "");
  flags.Add("--out", &out, "FILE", "");

  {
    Argv argv({"trace.csv", "--out", "plan.csv"});
    ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
    EXPECT_EQ(trace, "trace.csv");
    EXPECT_EQ(out, "plan.csv");
    EXPECT_TRUE(flags.Seen("--out"));
    EXPECT_TRUE(flags.SeenAny({"--out", "--missing"}));
    EXPECT_FALSE(flags.SeenAny({"--missing"}));
  }
}

TEST(Flags, MissingRequiredPositionalFails) {
  std::string trace;
  FlagParser flags("test");
  flags.AddPositional(&trace, "TRACE", "");
  Argv argv({});
  EXPECT_FALSE(flags.Parse(argv.argc(), argv.argv()));
}

TEST(Flags, DashAloneIsAValueNotAFlag) {
  std::string json;
  FlagParser flags("test");
  flags.Add("--json", &json, "FILE", "");
  Argv argv({"--json", "-"});
  ASSERT_TRUE(flags.Parse(argv.argc(), argv.argv()));
  EXPECT_EQ(json, "-");
}

TEST(Flags, UsageNamesEveryFlag) {
  int count = 0;
  std::string trace;
  FlagParser flags("mytool", "Does things.");
  flags.AddPositional(&trace, "TRACE", "input trace");
  flags.Add("--count", &count, "N", "how many");
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("usage: mytool TRACE [flags]"), std::string::npos);
  EXPECT_NE(usage.find("Does things."), std::string::npos);
  EXPECT_NE(usage.find("--count N"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
}

}  // namespace
}  // namespace stalloc
