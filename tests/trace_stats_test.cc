// Dedicated coverage for src/trace/trace_stats.*: the motivation-figure analyses (size
// distribution, lifespan classes, theoretical peak) on hand-built traces with known answers.

#include "src/trace/trace_stats.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace stalloc {
namespace {

MemoryEvent Ev(uint64_t size, LogicalTime ts, LogicalTime te, PhaseId ps, PhaseId pe,
               bool dyn = false) {
  MemoryEvent e;
  e.size = size;
  e.ts = ts;
  e.te = te;
  e.ps = ps;
  e.pe = pe;
  e.dyn = dyn;
  if (dyn) {
    e.ls = 0;
    e.le = 0;
  }
  return e;
}

// init [0,2), fwd [2,6), bwd [6,10), opt [10,12); one layer for dynamic events.
Trace KnownTrace() {
  Trace t;
  t.set_name("known");
  PhaseId init = t.AddPhase(PhaseInfo{PhaseKind::kIterInit, -1, -1, 0, 2});
  PhaseId fwd = t.AddPhase(PhaseInfo{PhaseKind::kForward, 0, -1, 2, 6});
  PhaseId bwd = t.AddPhase(PhaseInfo{PhaseKind::kBackward, 0, -1, 6, 10});
  PhaseId opt = t.AddPhase(PhaseInfo{PhaseKind::kOptimizer, -1, -1, 10, 12});
  t.AddLayer(LayerInfo{"l0", 2, 10});
  t.AddEvent(Ev(1000, 0, 12, init, opt));        // persistent, live throughout
  t.AddEvent(Ev(600, 2, 8, fwd, bwd));           // scoped activation
  t.AddEvent(Ev(100, 3, 5, fwd, fwd));           // transient workspace (filtered: <= 512)
  t.AddEvent(Ev(600, 6, 9, bwd, bwd, true));     // dynamic transient
  return t;
}

TEST(TraceStats, CountsAndClasses) {
  TraceStats s = ComputeStats(KnownTrace());
  EXPECT_EQ(s.num_events, 4u);
  EXPECT_EQ(s.num_static, 3u);
  EXPECT_EQ(s.num_dynamic, 1u);
  EXPECT_EQ(s.total_bytes, 1000u + 600 + 100 + 600);
  EXPECT_EQ(s.persistent_count, 1u);
  EXPECT_EQ(s.scoped_count, 1u);
  EXPECT_EQ(s.transient_count, 2u);
  EXPECT_EQ(s.persistent_bytes, 1000u);
  EXPECT_EQ(s.scoped_bytes, 600u);
  EXPECT_EQ(s.transient_bytes, 700u);
}

TEST(TraceStats, DistinctSizesHonourTheFilter) {
  // The 100-byte workspace is under the paper's 512-byte cut; 600 appears twice but counts once.
  TraceStats s = ComputeStats(KnownTrace());
  EXPECT_EQ(s.distinct_sizes, 2u);  // {1000, 600}
  TraceStats all = ComputeStats(KnownTrace(), 0);
  EXPECT_EQ(all.distinct_sizes, 3u);  // {1000, 600, 100}
}

TEST(TraceStats, PeakAndPeakTime) {
  // Live bytes: [0,2)=1000, [2,3)=1600, [3,5)=1700, [5,6)=1600, [6,8)=2200, [8,9)=1600, ...
  TraceStats s = ComputeStats(KnownTrace());
  EXPECT_EQ(s.peak_allocated, 2200u);
  EXPECT_EQ(s.peak_time, 6u);
  EXPECT_EQ(PeakAllocated(KnownTrace()), 2200u);
}

TEST(TraceStats, LiveBytesCurveTracksEveryChangePoint) {
  const Trace t = KnownTrace();
  auto curve = LiveBytesCurve(t.events());
  ASSERT_FALSE(curve.empty());
  // The curve must contain the peak and end at zero live bytes.
  uint64_t max_live = 0;
  for (const auto& [time, live] : curve) {
    max_live = std::max(max_live, live);
  }
  EXPECT_EQ(max_live, 2200u);
  EXPECT_EQ(curve.back().second, 0u);
  // Change points are strictly ordered in time.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i - 1].first, curve[i].first);
  }
}

TEST(TraceStats, PeakAllocatedOfEventSubset) {
  std::vector<MemoryEvent> overlap = {Ev(100, 0, 4, 0, 0), Ev(200, 2, 6, 0, 0)};
  EXPECT_EQ(PeakAllocated(overlap), 300u);
  // Half-open lifespans: a free at t and a malloc at t do not overlap.
  std::vector<MemoryEvent> handover = {Ev(100, 0, 4, 0, 0), Ev(200, 4, 6, 0, 0)};
  EXPECT_EQ(PeakAllocated(handover), 200u);
  EXPECT_EQ(PeakAllocated(std::vector<MemoryEvent>{}), 0u);
}

TEST(TraceStats, SizeHistogramBucketsArePowerOfTwoAndSumToTotal) {
  TraceStats s = ComputeStats(KnownTrace(), 0);
  uint64_t total = 0;
  double freq = 0;
  for (const auto& b : s.size_histogram) {
    total += b.count;
    freq += b.frequency;
    if (b.bucket_lo != 0) {
      EXPECT_TRUE(IsPowerOfTwo(b.bucket_lo)) << b.bucket_lo;
    }
  }
  EXPECT_EQ(total, s.num_events);
  EXPECT_NEAR(freq, 1.0, 1e-9);
}

TEST(TraceStats, PhasePeakBreakdownPerWindow) {
  // Live bytes: [0,2)=1000, [2,3)=1600, [3,5)=1700, [5,6)=1600, [6,8)=2200, [8,9)=1600,
  // [9,10)=1000, [10,12)=1000.
  const Trace t = KnownTrace();
  auto peaks = PhasePeakBreakdown(t);
  ASSERT_EQ(peaks.size(), 4u);
  EXPECT_EQ(peaks[0].kind, PhaseKind::kIterInit);
  EXPECT_EQ(peaks[0].peak_live, 1000u);
  EXPECT_EQ(peaks[1].kind, PhaseKind::kForward);
  EXPECT_EQ(peaks[1].peak_live, 1700u);
  EXPECT_EQ(peaks[2].kind, PhaseKind::kBackward);
  EXPECT_EQ(peaks[2].peak_live, 2200u);
  // The optimizer window has no change points of its own: the peak is the carried-in live value.
  EXPECT_EQ(peaks[3].kind, PhaseKind::kOptimizer);
  EXPECT_EQ(peaks[3].peak_live, 1000u);
  // Window bounds come straight from the phase table.
  EXPECT_EQ(peaks[2].start, 6u);
  EXPECT_EQ(peaks[2].end, 10u);
}

TEST(TraceStats, PhasePeaksBoundTheGlobalPeak) {
  TraceStats s = ComputeStats(KnownTrace());
  ASSERT_EQ(s.phase_peaks.size(), 4u);
  uint64_t worst = 0;
  for (const PhasePeak& p : s.phase_peaks) {
    EXPECT_LE(p.peak_live, s.peak_allocated);
    worst = std::max(worst, p.peak_live);
  }
  // Phases tile the trace timeline here, so the worst window *is* the global peak.
  EXPECT_EQ(worst, s.peak_allocated);
}

TEST(TraceStats, PhasePeaksOnPhaselessTraceAreEmpty) {
  Trace t;
  t.AddEvent(Ev(100, 0, 4, kInvalidPhase, kInvalidPhase));
  EXPECT_TRUE(PhasePeakBreakdown(t).empty());
}

TEST(TraceStats, ToStringMentionsTheClasses) {
  const std::string text = ComputeStats(KnownTrace()).ToString();
  EXPECT_NE(text.find("persistent"), std::string::npos);
  EXPECT_NE(text.find("scoped"), std::string::npos);
  EXPECT_NE(text.find("transient"), std::string::npos);
}

}  // namespace
}  // namespace stalloc
