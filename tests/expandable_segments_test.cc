#include "src/allocators/expandable_segments.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace stalloc {
namespace {

TEST(ExpandableSegments, GrowsByGranules) {
  SimDevice dev(8 * GiB);
  ExpandableSegmentsAllocator alloc(&dev);
  auto a = alloc.Malloc(3 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc.mapped_bytes(), 4 * MiB);  // 2 granules
  EXPECT_EQ(dev.counters().mem_create, 2u);
  EXPECT_EQ(dev.counters().mem_map, 2u);
  alloc.Free(*a);
}

TEST(ExpandableSegments, HolesAreReusedAcrossSizes) {
  SimDevice dev(8 * GiB);
  ExpandableSegmentsAllocator alloc(&dev);
  // Allocate A, B; free A; a smaller request must reuse A's hole without growing the mapping.
  auto a = alloc.Malloc(64 * MiB);
  auto b = alloc.Malloc(64 * MiB);
  ASSERT_TRUE(a.has_value() && b.has_value());
  const uint64_t mapped = alloc.mapped_bytes();
  alloc.Free(*a);
  auto c = alloc.Malloc(32 * MiB);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(alloc.mapped_bytes(), mapped) << "hole reuse must not grow the mapping";
  EXPECT_EQ(*c, *a);
  alloc.Free(*b);
  alloc.Free(*c);
}

TEST(ExpandableSegments, TrimUnmapsTail) {
  SimDevice dev(8 * GiB);
  ExpandableSegmentsConfig config;
  config.trim_threshold = 16 * MiB;
  ExpandableSegmentsAllocator alloc(&dev, config);
  auto a = alloc.Malloc(128 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc.mapped_bytes(), 128 * MiB);
  alloc.Free(*a);  // tail free block 128 MiB > threshold: unmapped
  EXPECT_EQ(alloc.mapped_bytes(), 0u);
  EXPECT_GT(dev.counters().mem_unmap, 0u);
  EXPECT_EQ(dev.physical_used(), 0u);
}

TEST(ExpandableSegments, SmallTailIsRetained) {
  SimDevice dev(8 * GiB);
  ExpandableSegmentsConfig config;
  config.trim_threshold = 64 * MiB;
  ExpandableSegmentsAllocator alloc(&dev, config);
  auto a = alloc.Malloc(8 * MiB);
  alloc.Free(*a);
  EXPECT_EQ(alloc.mapped_bytes(), 8 * MiB) << "below-threshold tail should stay mapped";
  alloc.EmptyCache();
  EXPECT_EQ(alloc.mapped_bytes(), 0u);
}

TEST(ExpandableSegments, SmallRequestsUseClassicPool) {
  SimDevice dev(8 * GiB);
  ExpandableSegmentsAllocator alloc(&dev);
  auto a = alloc.Malloc(64 * KiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc.mapped_bytes(), 0u);
  EXPECT_EQ(alloc.ReservedBytes(), 2 * MiB);  // small-pool segment
  EXPECT_TRUE(alloc.Free(*a));
}

TEST(ExpandableSegments, OscillatingFootprintCausesVmmChurn) {
  // The recompute-style pattern under an explicit (pressure-style) trim threshold: the
  // footprint repeatedly swells and shrinks past it, so the allocator keeps unmapping and
  // re-mapping granules. This churn is the throughput overhead the paper measures for
  // PyTorch ES on near-full devices (§9.2/§9.3).
  SimDevice dev(8 * GiB);
  ExpandableSegmentsConfig config;
  config.trim_threshold = 32 * MiB;
  ExpandableSegmentsAllocator alloc(&dev, config);
  for (int i = 0; i < 10; ++i) {
    auto a = alloc.Malloc(256 * MiB);
    ASSERT_TRUE(a.has_value());
    alloc.Free(*a);
  }
  EXPECT_GE(dev.counters().mem_map, 10u * 128u);
  EXPECT_GE(dev.counters().mem_unmap, 10u * 128u);
}

TEST(ExpandableSegments, LazyByDefaultNoChurnWithoutPressure) {
  // Default PyTorch behaviour: freed granules stay mapped; no unmap traffic in steady state.
  SimDevice dev(8 * GiB);
  ExpandableSegmentsAllocator alloc(&dev);
  for (int i = 0; i < 10; ++i) {
    auto a = alloc.Malloc(256 * MiB);
    ASSERT_TRUE(a.has_value());
    alloc.Free(*a);
  }
  EXPECT_EQ(dev.counters().mem_unmap, 0u);
  EXPECT_EQ(dev.counters().mem_create, 128u);  // mapped once, reused thereafter
  EXPECT_EQ(alloc.mapped_bytes(), 256 * MiB);
}

TEST(ExpandableSegments, PressureTrimsOtherStreamsAndRetries) {
  // Device nearly full; a second stream's growth forces pressure trimming of stream 0's cache.
  SimDevice dev(256 * MiB);
  ExpandableSegmentsAllocator alloc(&dev);
  RequestContext s0;
  auto a = alloc.Malloc(200 * MiB, s0);
  ASSERT_TRUE(a.has_value());
  alloc.Free(*a);  // stays mapped on stream 0
  RequestContext s1;
  s1.stream = kDpCommStream;
  auto b = alloc.Malloc(200 * MiB, s1);  // needs stream 0's granules back
  ASSERT_TRUE(b.has_value());
  EXPECT_GT(dev.counters().mem_unmap, 0u);
  alloc.Free(*b);
}

TEST(ExpandableSegments, ReservedTracksMappedNotVirtual) {
  SimDevice dev(8 * GiB);
  ExpandableSegmentsAllocator alloc(&dev);
  EXPECT_EQ(alloc.ReservedBytes(), 0u);  // VA reservation itself costs nothing
  auto a = alloc.Malloc(10 * MiB);
  EXPECT_EQ(alloc.ReservedBytes(), 10 * MiB);
  alloc.Free(*a);
}

TEST(ExpandableSegments, OomWhenPhysicalExhausted) {
  SimDevice dev(32 * MiB);
  ExpandableSegmentsAllocator alloc(&dev);
  auto a = alloc.Malloc(24 * MiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(alloc.Malloc(24 * MiB).has_value());
  alloc.Free(*a);
  EXPECT_TRUE(alloc.Malloc(24 * MiB).has_value());
}

class ExpandableSegmentsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExpandableSegmentsPropertyTest, RandomStorm) {
  SimDevice dev(4 * GiB);
  ExpandableSegmentsAllocator alloc(&dev);
  Rng rng(GetParam());
  std::vector<uint64_t> live;
  for (int step = 0; step < 1500; ++step) {
    if (live.empty() || rng.NextBelow(100) < 55) {
      const uint64_t size = rng.NextBelow(100) < 40 ? 512 * (1 + rng.NextBelow(1024))
                                                    : MiB * (1 + rng.NextBelow(48));
      auto a = alloc.Malloc(size);
      if (a.has_value()) {
        live.push_back(*a);
      }
    } else {
      const size_t i = rng.NextBelow(live.size());
      ASSERT_TRUE(alloc.Free(live[i]));
      live[i] = live.back();
      live.pop_back();
    }
    // Mapped frontier is always granularity-aligned.
    ASSERT_EQ(alloc.mapped_bytes() % SimDevice::kGranularity, 0u);
  }
  for (auto a : live) {
    ASSERT_TRUE(alloc.Free(a));
  }
  EXPECT_EQ(alloc.stats().allocated_current, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpandableSegmentsPropertyTest, ::testing::Values(3, 17, 71));

}  // namespace
}  // namespace stalloc
