// Tests for run explainability: the Json recursive-descent parser added for stalloc_diff
// (round-trips, integer preservation, malformed-input errors) and the run_diff library
// (record extraction, identical-run diffs, scalar/attribution deltas, and the headline
// contract: on a caching-vs-stalloc pair the attribution deltas explain at least 90% of the
// external-fragmentation delta).

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/api/report.h"
#include "src/api/run_diff.h"
#include "src/api/serializers.h"
#include "src/api/session.h"
#include "src/api/spec.h"
#include "src/telemetry/heap_map.h"
#include "src/telemetry/telemetry.h"

namespace stalloc {
namespace {

// === Json::Parse ===

TEST(JsonParseTest, RoundTripsTypedValues) {
  const std::string text =
      "{\"s\": \"a\\\"b\\\\c\\n\", \"i\": -42, \"u\": 18000000000, \"d\": 1.5, "
      "\"t\": true, \"f\": false, \"n\": null, \"arr\": [1, [2, 3], {\"k\": \"v\"}]}";
  std::string error;
  std::optional<Json> doc = Json::Parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->Find("s")->AsString(), "a\"b\\c\n");
  EXPECT_EQ(doc->Find("i")->AsInt(), -42);
  EXPECT_EQ(doc->Find("u")->AsUint(), 18000000000ull);  // > 2^32, integer-preserved
  EXPECT_DOUBLE_EQ(doc->Find("d")->AsDouble(), 1.5);
  EXPECT_TRUE(doc->Find("t")->AsBool(false));
  EXPECT_FALSE(doc->Find("f")->AsBool(true));
  EXPECT_TRUE(doc->Find("n")->IsNull());
  const Json* arr = doc->Find("arr");
  ASSERT_TRUE(arr != nullptr && arr->IsArray());
  EXPECT_EQ(arr->at(1).at(0).AsInt(), 2);
  EXPECT_EQ(arr->at(2).Find("k")->AsString(), "v");

  // Emit -> parse -> emit is a fixed point (insertion order is preserved both ways).
  const std::string emitted = doc->Dump(0);
  std::optional<Json> again = Json::Parse(emitted, &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->Dump(0), emitted);
}

TEST(JsonParseTest, LargeIntegersSurviveExactly) {
  // A digest-sized uint64 must not round-trip through a double.
  std::string error;
  std::optional<Json> doc = Json::Parse("{\"addr\": 9007199254740995}", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->Find("addr")->AsUint(), 9007199254740995ull);  // 2^53 + 3: doubles can't
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "{\"a\": }", "[1, 2", "{\"a\": 1} trailing", "nul",
                          "\"unterminated", "{\"a\" 1}", "[01]", "{\"bad\\escape\": 1}"}) {
    std::string error;
    EXPECT_FALSE(Json::Parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
  // The error message localizes the failure.
  std::string error;
  EXPECT_FALSE(Json::Parse("{\"a\": 1, \"b\": ?}", &error).has_value());
  EXPECT_NE(error.find("at byte"), std::string::npos);
}

TEST(JsonParseTest, UnicodeEscapesDecodeToUtf8) {
  std::string error;
  std::optional<Json> doc = Json::Parse("{\"s\": \"\\u00e9\\u4e2d\"}", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->Find("s")->AsString(), "\xc3\xa9\xe4\xb8\xad");  // é + 中
}

// === ExtractRunRecords ===

TEST(RunDiffTest, ExtractRejectsForeignDocuments) {
  std::vector<const Json*> records;
  std::string error;
  std::optional<Json> no_results = Json::Parse("{\"schema_version\": 2}");
  ASSERT_TRUE(no_results.has_value());
  EXPECT_FALSE(ExtractRunRecords(*no_results, &records, &error));
  EXPECT_NE(error.find("results"), std::string::npos);

  std::optional<Json> wrong_type = Json::Parse("{\"results\": 7}");
  ASSERT_TRUE(wrong_type.has_value());
  EXPECT_FALSE(ExtractRunRecords(*wrong_type, &records, &error));

  std::optional<Json> good = Json::Parse("{\"results\": [{\"allocator\": \"x\"}]}");
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(ExtractRunRecords(*good, &records, &error));
  ASSERT_EQ(records.size(), 1u);
}

// === DiffRunRecords ===

TEST(RunDiffTest, IdenticalRecordsDiffEmpty) {
  std::optional<Json> rec = Json::Parse(
      "{\"allocator\": \"torch-caching\", \"status\": \"ok\", \"allocated_peak\": 100, "
      "\"reserved_peak\": 120, \"fragmentation_bytes\": 20}");
  ASSERT_TRUE(rec.has_value());
  const RunPairDiff diff = DiffRunRecords(*rec, *rec);
  EXPECT_TRUE(diff.Empty());
  EXPECT_EQ(diff.frag_delta, 0);
  EXPECT_DOUBLE_EQ(diff.coverage(), 1.0);  // nothing to explain counts as fully explained
  const std::string dump = ToJson(diff).Dump(0);
  EXPECT_NE(dump.find("\"identical\": true"), std::string::npos);
}

TEST(RunDiffTest, ScalarAndStatusDeltasSurface) {
  std::optional<Json> a = Json::Parse(
      "{\"allocator\": \"torch-caching\", \"status\": \"ok\", \"reserved_peak\": 200, "
      "\"fragmentation_bytes\": 50}");
  std::optional<Json> b = Json::Parse(
      "{\"allocator\": \"torch-caching\", \"status\": \"oom\", \"reserved_peak\": 260, "
      "\"fragmentation_bytes\": 80}");
  ASSERT_TRUE(a.has_value() && b.has_value());
  const RunPairDiff diff = DiffRunRecords(*a, *b);
  EXPECT_FALSE(diff.Empty());
  bool saw_status = false, saw_reserved = false;
  for (const ScalarDelta& d : diff.scalars) {
    if (d.key == "status") {
      saw_status = true;
      EXPECT_FALSE(d.numeric);
      EXPECT_EQ(d.a_text, "ok");
      EXPECT_EQ(d.b_text, "oom");
    }
    if (d.key == "reserved_peak") {
      saw_reserved = true;
      EXPECT_EQ(d.b_num - d.a_num, 60.0);
    }
  }
  EXPECT_TRUE(saw_status);
  EXPECT_TRUE(saw_reserved);
  EXPECT_EQ(diff.frag_delta, 30.0);
}

#if STALLOC_TELEMETRY

// The headline acceptance contract, end to end through real runs: diff a caching run against
// a stalloc run on the same rank workload; the Mr delta must show stalloc reserving less, and
// the frag-attribution deltas must explain >= 90% of the external-fragmentation delta by
// named size-group/phase rows.
TEST(RunDiffTest, CachingVsStallocCoverageAtLeastNinetyPercent) {
  telemetry::SetEnabled(true);
  ExperimentSpec spec;
  spec.axis = WorkloadAxis::kTrainRank;
  spec.model = "gpt2";
  spec.config_tag = "VR";

  Session session;
  auto run = [&](const char* alloc) {
    telemetry::HeapMapRecorder::Global().Arm(telemetry::HeapMapConfig{});
    RunRecord rec = session.RunOne(spec, alloc);
    telemetry::HeapMapRecorder::Global().Disarm();
    EXPECT_TRUE(rec.ok()) << alloc;
    EXPECT_FALSE(rec.heap_timeline.empty()) << alloc;
    EXPECT_FALSE(rec.frag_attribution.empty()) << alloc;
    return ToJson(rec);
  };
  const Json a = run("torch-caching");
  const Json b = run("stalloc");
  telemetry::SetEnabled(false);

  const RunPairDiff diff = DiffRunRecords(a, b);
  // STAlloc's static plan reserves less than the caching allocator on this workload...
  double mr_delta = 0;
  for (const ScalarDelta& d : diff.scalars) {
    if (d.key == "reserved_peak") mr_delta = d.b_num - d.a_num;
  }
  EXPECT_LT(mr_delta, 0.0);
  // ...and the attribution deltas name where the reclaimed fragmentation lived.
  EXPECT_LT(diff.frag_delta, 0.0);
  EXPECT_GE(diff.coverage(), 0.9) << "attribution explains " << diff.explained << " of "
                                  << diff.frag_delta;
  bool named_group = false;
  for (const AttributionDelta& d : diff.attribution) {
    if (d.delta() != 0 && d.size_group != "idle" && !d.size_group.empty()) named_group = true;
  }
  EXPECT_TRUE(named_group);
}

#endif  // STALLOC_TELEMETRY

}  // namespace
}  // namespace stalloc
