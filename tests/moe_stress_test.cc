// MoE dynamic-allocator stress: replay iterations whose expert routing diverges wildly from the
// profiled iteration. The memory-stomping detector in AllocatorBase aborts the test on any
// overlap, so passing means the Dynamic Reusable Space guarantees hold even when sizes blow
// through the profiled values and requests spill to the caching fallback.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/common/units.h"
#include "src/core/planner.h"
#include "src/core/profiler.h"
#include "src/core/stalloc_allocator.h"
#include "src/driver/replay.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

constexpr uint64_t kCapacity = 128 * GiB;

class MoeStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MoeStressTest, DivergentRoutingNeverStomps) {
  TrainConfig c;
  c.parallel.pp = 2;
  c.parallel.ep = 4;
  c.parallel.dp = 4;
  c.num_microbatches = 4;
  c.micro_batch_size = 4;
  c.opt.recompute = RecomputeMode::kFull;
  c.opt.zero = ZeroStage::kStage1;
  WorkloadBuilder wb(Qwen15_MoE_A27B(), c);

  ProfileResult profile = ProfileWorkload(wb, kCapacity, /*iteration_seed=*/1);
  ASSERT_TRUE(profile.feasible);
  SynthesisResult synthesis = SynthesizePlan(profile.trace);

  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, synthesis.plan, synthesis.dyn_space);
  ASSERT_TRUE(alloc.Init());

  // Replay several wildly different iterations back to back. Any address overlap between live
  // blocks aborts inside AllocatorBase (stomping detector).
  for (uint64_t i = 0; i < 3; ++i) {
    ReplayResult r = ReplayTrace(wb.Build(GetParam() * 1000 + i), &alloc);
    ASSERT_FALSE(r.oom);
    EXPECT_GT(r.memory_efficiency, 0.9);
  }
  const auto& bd = alloc.breakdown();
  EXPECT_EQ(bd.static_mismatches, 0u);
  EXPECT_GT(bd.dynamic_reuse_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoeStressTest, ::testing::Values(3, 17, 4242));

TEST(MoeStress, DynamicRegionsShrinkGracefullyUnderTinyPool) {
  // Degenerate case: a plan with a tiny pool leaves no reusable space; every dynamic request
  // must fall back without error.
  TrainConfig c;
  c.parallel.pp = 2;
  c.parallel.ep = 4;
  c.parallel.dp = 4;
  c.num_microbatches = 2;
  c.micro_batch_size = 2;
  c.opt.recompute = RecomputeMode::kFull;
  c.opt.zero = ZeroStage::kStage1;
  WorkloadBuilder wb(Qwen15_MoE_A27B(), c);
  ProfileResult profile = ProfileWorkload(wb, kCapacity, 1);
  SynthesisResult synthesis = SynthesizePlan(profile.trace);

  // Clamp every reusable region to zero: dynamic requests have nowhere to go in the pool.
  for (auto& [key, region] : synthesis.dyn_space.regions) {
    region.Clear();
  }
  SimDevice dev(kCapacity);
  STAllocAllocator alloc(&dev, synthesis.plan, synthesis.dyn_space);
  ASSERT_TRUE(alloc.Init());
  ReplayResult r = ReplayTrace(wb.Build(2), &alloc);
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(alloc.breakdown().dynamic_reuse_hits, 0u);
  EXPECT_GT(alloc.breakdown().dynamic_fallbacks, 0u);
}

}  // namespace
}  // namespace stalloc
