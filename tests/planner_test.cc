#include "src/core/planner.h"

#include <cstdint>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/common/units.h"

#include "src/trace/trace_stats.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

TrainConfig SmallConfig() {
  TrainConfig c;
  c.parallel.pp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 4;
  return c;
}

TEST(Planner, EmptyTraceYieldsEmptyPlan) {
  Trace t;
  SynthesisResult r = SynthesizePlan(t);
  EXPECT_TRUE(r.plan.empty());
  EXPECT_EQ(r.plan.pool_size, 0u);
}

TEST(Planner, SingleEventPlan) {
  Trace t;
  PhaseId p = t.AddPhase({PhaseKind::kForward, 0, 0, 0, 2});
  MemoryEvent e;
  e.size = 1000;
  e.ts = 0;
  e.te = 1;
  e.ps = p;
  e.pe = p;
  t.AddEvent(e);
  SynthesisResult r = SynthesizePlan(t);
  ASSERT_EQ(r.plan.decisions.size(), 1u);
  EXPECT_EQ(r.plan.decisions[0].addr, 0u);
  EXPECT_EQ(r.plan.pool_size, AlignUp(1000u, kPlanAlign));
}

TEST(Planner, EveryStaticEventGetsExactlyOneDecision) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  Trace trace = wb.Build(1);
  SynthesisResult r = SynthesizePlan(trace);
  std::set<uint64_t> planned;
  for (const auto& d : r.plan.decisions) {
    EXPECT_TRUE(planned.insert(d.event.id).second) << "duplicate decision";
  }
  uint64_t static_count = 0;
  for (const auto& e : trace.events()) {
    if (!e.dyn) {
      ++static_count;
      EXPECT_TRUE(planned.count(e.id)) << "static event " << e.id << " unplanned";
    }
  }
  EXPECT_EQ(planned.size(), static_count);
}

TEST(Planner, DecisionsSortedByAllocTime) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  SynthesisResult r = SynthesizePlan(wb.Build(1));
  for (size_t i = 1; i < r.plan.decisions.size(); ++i) {
    EXPECT_LE(r.plan.decisions[i - 1].event.ts, r.plan.decisions[i].event.ts);
  }
}

TEST(Planner, PoolNeverBelowLowerBound) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  SynthesisResult r = SynthesizePlan(wb.Build(1));
  EXPECT_GE(r.plan.pool_size, r.plan.lower_bound);
  EXPECT_GT(r.stats.PlanEfficiency(), 0.85) << "plan should be near-optimal on regular traces";
}

TEST(Planner, AblationsStillProduceValidPlans) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  Trace trace = wb.Build(1);
  for (bool fusion : {false, true}) {
    for (bool gaps : {false, true}) {
      PlanSynthesizerConfig config;
      config.enable_fusion = fusion;
      config.enable_gap_insertion = gaps;
      SynthesisResult r = SynthesizePlan(trace, config);
      std::string error;
      EXPECT_TRUE(r.plan.Check(&error)) << "fusion=" << fusion << " gaps=" << gaps << ": " << error;
    }
  }
}

TEST(Planner, GapInsertionNeverHurts) {
  WorkloadBuilder wb(Gpt2_345M(), SmallConfig());
  Trace trace = wb.Build(1);
  PlanSynthesizerConfig no_gaps;
  no_gaps.enable_gap_insertion = false;
  const uint64_t pool_with = SynthesizePlan(trace).plan.pool_size;
  const uint64_t pool_without = SynthesizePlan(trace, no_gaps).plan.pool_size;
  EXPECT_LE(pool_with, pool_without);
}

TEST(PlanValidator, DetectsStomping) {
  StaticPlan plan;
  MemoryEvent a;
  a.id = 0;
  a.size = 512;
  a.ts = 0;
  a.te = 10;
  MemoryEvent b = a;
  b.id = 1;
  b.ts = 5;  // overlaps a in time
  plan.decisions.push_back({a, 0, 512});
  plan.decisions.push_back({b, 256, 512});  // and in address space
  plan.pool_size = 4096;
  std::string error;
  EXPECT_FALSE(plan.Check(&error));
  EXPECT_NE(error.find("overlaps"), std::string::npos);
}

TEST(PlanValidator, AcceptsTimeDisjointSharing) {
  StaticPlan plan;
  MemoryEvent a;
  a.id = 0;
  a.size = 512;
  a.ts = 0;
  a.te = 5;
  MemoryEvent b = a;
  b.id = 1;
  b.ts = 5;  // half-open: starts exactly when a ends
  b.te = 10;
  plan.decisions.push_back({a, 0, 512});
  plan.decisions.push_back({b, 0, 512});
  plan.pool_size = 512;
  std::string error;
  EXPECT_TRUE(plan.Check(&error)) << error;
}

TEST(PlanValidator, DetectsPoolOverflow) {
  StaticPlan plan;
  MemoryEvent a;
  a.id = 0;
  a.size = 512;
  a.ts = 0;
  a.te = 5;
  plan.decisions.push_back({a, 1024, 512});
  plan.pool_size = 1024;  // decision ends at 1536 > pool
  std::string error;
  EXPECT_FALSE(plan.Check(&error));
  EXPECT_NE(error.find("beyond pool"), std::string::npos);
}

// The central correctness property: for every model x optimization-tag combination, the
// synthesized plan has no memory stomping and the pool is within a reasonable factor of the
// theoretical lower bound.
struct PlannerCase {
  const char* model;
  const char* tag;
  int rank = 0;
  RecomputeMode recompute_override = RecomputeMode::kNone;  // applied after the tag
  PipelineSchedule schedule = PipelineSchedule::k1F1B;
};

class PlannerPropertyTest : public ::testing::TestWithParam<PlannerCase> {};

TEST_P(PlannerPropertyTest, PlanIsValidAndTight) {
  const auto& p = GetParam();
  TrainConfig base = SmallConfig();
  base.parallel.dp = 2;
  ModelConfig model = ModelByName(p.model);
  if (model.moe.enabled()) {
    base.micro_batch_size = 2;
  }
  TrainConfig c = ApplyConfigTag(base, p.tag);
  c.rank = p.rank;
  if (p.recompute_override != RecomputeMode::kNone) {
    c.opt.recompute = p.recompute_override;
  }
  c.opt.schedule = p.schedule;
  WorkloadBuilder wb(model, c);
  Trace trace = wb.Build(11);
  SynthesisResult r = SynthesizePlan(trace);
  std::string error;
  ASSERT_TRUE(r.plan.Check(&error)) << error;
  EXPECT_GE(r.plan.pool_size, r.plan.lower_bound);
  EXPECT_LE(static_cast<double>(r.plan.pool_size),
            static_cast<double>(r.plan.lower_bound) * 1.35)
      << "pool should stay within 35% of the lower bound";
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByTags, PlannerPropertyTest,
    ::testing::Values(
        PlannerCase{"gpt2", "N"}, PlannerCase{"gpt2", "R"}, PlannerCase{"gpt2", "V"},
        PlannerCase{"gpt2", "VR"}, PlannerCase{"gpt2", "ZR"}, PlannerCase{"gpt2", "ZOR"},
        PlannerCase{"gpt2", "N", 1}, PlannerCase{"gpt2", "VR", 1},
        PlannerCase{"gpt2", "N", 0, RecomputeMode::kSelective},
        PlannerCase{"gpt2", "N", 0, RecomputeMode::kNone, PipelineSchedule::kGPipe},
        PlannerCase{"llama2-7b", "N"}, PlannerCase{"llama2-7b", "R"},
        PlannerCase{"llama2-7b", "R", 1}, PlannerCase{"qwen1.5-moe", "N"},
        PlannerCase{"qwen1.5-moe", "R"}, PlannerCase{"qwen1.5-moe", "R", 1}),
    [](const ::testing::TestParamInfo<PlannerCase>& info) {
      std::string name = std::string(info.param.model).substr(0, 4) + "_" + info.param.tag +
                         "_r" + std::to_string(info.param.rank);
      if (info.param.recompute_override == RecomputeMode::kSelective) {
        name += "_sel";
      }
      if (info.param.schedule == PipelineSchedule::kGPipe) {
        name += "_gpipe";
      }
      return name;
    });

}  // namespace
}  // namespace stalloc
