#include "src/metrics/throughput_model.h"

#include <gtest/gtest.h>

#include "src/trainsim/model_config.h"

namespace stalloc {
namespace {

TrainConfig BaseConfig() {
  TrainConfig c;
  c.parallel.tp = 2;
  c.parallel.pp = 2;
  c.parallel.dp = 4;
  c.num_microbatches = 8;
  c.micro_batch_size = 1;
  return c;
}

TEST(ThroughputModel, RecomputeLowersReportedTflops) {
  ModelConfig model = Qwen25_14B();
  TrainConfig plain = BaseConfig();
  TrainConfig rc = plain;
  rc.opt.recompute = RecomputeMode::kFull;
  auto t_plain = EstimateThroughput(model, plain, GpuSpec::H200());
  auto t_rc = EstimateThroughput(model, rc, GpuSpec::H200());
  EXPECT_LT(t_rc.model_tflops, t_plain.model_tflops);
  // Full recompute costs ~25% of reported throughput (Table 1: 464 -> 350 TFLOPS).
  EXPECT_NEAR(t_rc.model_tflops / t_plain.model_tflops, 0.75, 0.03);
}

TEST(ThroughputModel, VirtualPipelineReducesBubble) {
  ModelConfig model = Qwen25_14B();
  TrainConfig plain = BaseConfig();
  TrainConfig vpp = plain;
  vpp.parallel.vpp_chunks = 2;
  auto t_plain = EstimateThroughput(model, plain, GpuSpec::H200());
  auto t_vpp = EstimateThroughput(model, vpp, GpuSpec::H200());
  EXPECT_LT(t_vpp.bubble_fraction, t_plain.bubble_fraction);
  EXPECT_GT(t_vpp.model_tflops, t_plain.model_tflops);
}

TEST(ThroughputModel, HigherTpLosesEfficiency) {
  ModelConfig model = Qwen25_14B();
  TrainConfig tp2 = BaseConfig();
  TrainConfig tp4 = tp2;
  tp4.parallel.tp = 4;
  tp4.parallel.dp = 2;
  auto t2 = EstimateThroughput(model, tp2, GpuSpec::H200());
  auto t4 = EstimateThroughput(model, tp4, GpuSpec::H200());
  EXPECT_LT(t4.model_tflops, t2.model_tflops);
}

TEST(ThroughputModel, Table1Ordering) {
  // Table 1: Original(VPP) > DisableVPP > TP=4 > Recomputation.
  ModelConfig model = Qwen25_14B();
  TrainConfig original = BaseConfig();
  original.parallel.vpp_chunks = 2;
  TrainConfig no_vpp = BaseConfig();
  TrainConfig recompute = BaseConfig();
  recompute.opt.recompute = RecomputeMode::kFull;
  TrainConfig tp4 = BaseConfig();
  tp4.parallel.tp = 4;
  tp4.parallel.dp = 2;

  const auto gpu = GpuSpec::H200();
  const double t_orig = EstimateThroughput(model, original, gpu).model_tflops;
  const double t_novpp = EstimateThroughput(model, no_vpp, gpu).model_tflops;
  const double t_rc = EstimateThroughput(model, recompute, gpu).model_tflops;
  const double t_tp4 = EstimateThroughput(model, tp4, gpu).model_tflops;
  EXPECT_GT(t_orig, t_novpp);
  EXPECT_GT(t_novpp, t_tp4);
  EXPECT_GT(t_tp4, t_rc);
}

TEST(ThroughputModel, AllocatorOverheadExtendsIteration) {
  ModelConfig model = Qwen25_14B();
  TrainConfig c = BaseConfig();
  auto clean = EstimateThroughput(model, c, GpuSpec::H200(), 0);
  auto loaded = EstimateThroughput(model, c, GpuSpec::H200(), /*api_cost_us=*/5e5);
  EXPECT_GT(loaded.iteration_seconds, clean.iteration_seconds);
  EXPECT_LT(loaded.model_tflops, clean.model_tflops);
  EXPECT_GT(loaded.allocator_overhead_fraction, 0.0);
}

TEST(ThroughputModel, FlopsScaleWithTokens) {
  ModelConfig model = Llama2_7B();
  TrainConfig c = BaseConfig();
  const double f1 = ModelFlopsPerGpu(model, c);
  c.micro_batch_size = 2;
  const double f2 = ModelFlopsPerGpu(model, c);
  EXPECT_NEAR(f2 / f1, 2.0, 1e-9);
}

}  // namespace
}  // namespace stalloc
