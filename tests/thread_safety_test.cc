// Thread-safety coverage for the sharded fleet's concurrency model. The invariant is
// shard-confinement, not locking: each worker thread owns its shard's devices, allocators and
// stats hooks outright between scheduler boundaries, so AllocatorBase's unguarded counters and
// AllocatorStatsHook callbacks are safe exactly because no two threads ever touch the same
// allocator. These tests drive that model hard — per-shard replay over a WorkerPool, full
// RunCluster calls racing each other — and are the payload of the STALLOC_SANITIZE=thread CI
// job: any cross-thread leak in the shard partitioning shows up as a TSan report here.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/allocators/caching_allocator.h"
#include "src/cluster/cluster_workload.h"
#include "src/cluster/fleet.h"
#include "src/common/units.h"
#include "src/common/worker_pool.h"
#include "src/gpu/sim_device.h"
#include "src/replay/replay_engine.h"
#include "src/trace/trace.h"

namespace stalloc {
namespace {

Trace MakeChurnTrace(int blocks, uint64_t size) {
  Trace trace;
  for (int i = 0; i < blocks; ++i) {
    MemoryEvent e;
    e.size = size + static_cast<uint64_t>(i % 7) * KiB;  // mixed sizes churn the cache
    e.ts = static_cast<LogicalTime>(i);
    e.te = static_cast<LogicalTime>(i + 3);
    trace.AddEvent(e);
  }
  return trace;
}

// Counts hook callbacks and cross-checks them against AllocatorStats afterwards.
class CountingHook final : public AllocatorStatsHook {
 public:
  void OnMalloc(uint64_t size, double, const AllocatorSnapshot&) override {
    ++mallocs;
    malloc_bytes += size;
  }
  void OnFree(uint64_t size, double, const AllocatorSnapshot&) override {
    ++frees;
    free_bytes += size;
  }
  void OnOom(uint64_t, const AllocatorSnapshot&) override { ++ooms; }

  uint64_t mallocs = 0, frees = 0, ooms = 0;
  uint64_t malloc_bytes = 0, free_bytes = 0;
};

// One shard's worth of state, owned by whichever pool thread picks it up.
struct ShardFixture {
  explicit ShardFixture(uint64_t capacity) : device(capacity), alloc(&device) {}
  SimDevice device;
  CachingAllocator alloc;
  CountingHook hook;
  Trace trace;
  ReplayEngineResult result;
};

// The production access pattern: N shards replayed concurrently over a WorkerPool, each with a
// stats hook installed. Everything is shard-local; stats and hook counters must come out exact.
TEST(ThreadSafety, StatsAndHooksUnderConcurrentPerShardReplay) {
  constexpr int kShards = 8;
  constexpr int kBlocks = 400;
  std::vector<std::unique_ptr<ShardFixture>> shards;
  for (int s = 0; s < kShards; ++s) {
    shards.push_back(std::make_unique<ShardFixture>(1 * GiB));
    shards.back()->trace = MakeChurnTrace(kBlocks, (1 + s) * MiB);
    shards.back()->alloc.SetStatsHook(&shards.back()->hook);
  }

  WorkerPool pool(4);
  pool.ParallelFor(shards.size(), [&](size_t s) {
    ShardFixture& shard = *shards[s];
    ReplayEngine engine(nullptr);
    ReplaySource src;
    src.trace = &shard.trace;
    src.alloc = &shard.alloc;
    engine.AddSource(src);
    shard.result = engine.Run();
  });

  for (int s = 0; s < kShards; ++s) {
    const ShardFixture& shard = *shards[s];
    const AllocatorStats& stats = shard.alloc.stats();
    EXPECT_FALSE(shard.result.oom) << s;
    EXPECT_EQ(stats.num_mallocs, static_cast<uint64_t>(kBlocks)) << s;
    EXPECT_EQ(stats.num_frees, static_cast<uint64_t>(kBlocks)) << s;
    EXPECT_EQ(stats.allocated_current, 0u) << s;
    // The hook saw exactly what the stats counted — same thread, same shard, no races.
    EXPECT_EQ(shard.hook.mallocs, stats.num_mallocs) << s;
    EXPECT_EQ(shard.hook.frees, stats.num_frees) << s;
    EXPECT_EQ(shard.hook.malloc_bytes, stats.bytes_allocated_total) << s;
    EXPECT_EQ(shard.hook.free_bytes, stats.bytes_freed_total) << s;
    EXPECT_GT(stats.malloc_latency_us, 0.0) << s;  // latency armed while the hook is installed
  }
}

// OOM callbacks stay shard-confined too: every shard's allocator is driven into failure
// concurrently and each hook must count only its own shard's failed mallocs.
TEST(ThreadSafety, OomCallbacksStayShardConfined) {
  constexpr int kShards = 6;
  std::vector<std::unique_ptr<ShardFixture>> shards;
  for (int s = 0; s < kShards; ++s) {
    shards.push_back(std::make_unique<ShardFixture>(8 * MiB));  // far too small for the trace
    shards.back()->trace = MakeChurnTrace(64, 1 * MiB);
    shards.back()->alloc.SetStatsHook(&shards.back()->hook);
  }
  WorkerPool pool(3);
  pool.ParallelFor(shards.size(), [&](size_t s) {
    ShardFixture& shard = *shards[s];
    ReplayEngine engine(nullptr);
    ReplaySource src;
    src.trace = &shard.trace;
    src.alloc = &shard.alloc;
    engine.AddSource(src);
    shard.result = engine.Run();
  });
  for (int s = 0; s < kShards; ++s) {
    EXPECT_TRUE(shards[s]->result.oom) << s;
    EXPECT_EQ(shards[s]->hook.ooms, shards[s]->alloc.stats().num_oom) << s;
    EXPECT_GT(shards[s]->hook.ooms, 0u) << s;
  }
}

// WorkerPool reuse: back-to-back ParallelFor batches from one pool must not leak work between
// generations. Each batch's indices are claimed exactly once.
TEST(ThreadSafety, WorkerPoolBatchesAreExactlyOnce) {
  WorkerPool pool(5);
  for (int batch = 0; batch < 20; ++batch) {
    const size_t n = 1 + static_cast<size_t>(batch * 7 % 41);
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "batch " << batch << " index " << i;
    }
  }
}

// Whole sharded-cluster runs racing each other: RunCluster holds no global mutable state, so
// concurrent invocations (each itself multi-threaded) must neither race nor diverge.
TEST(ThreadSafety, ConcurrentRunClusterInvocationsAgree) {
  ClusterWorkloadConfig wl;
  wl.num_jobs = 5;
  wl.train_fraction = 0.5;
  wl.mean_interarrival = 600;
  wl.micro_batches = {1, 2};
  wl.num_microbatches = 2;
  wl.max_pp = 2;
  wl.min_iterations = 1;
  wl.max_iterations = 1;
  wl.serve_requests = 10;
  wl.kv_budget_bytes = 1 * GiB;
  const auto jobs = GenerateClusterWorkload(wl, 31);

  FleetConfig fleet;
  fleet.device_capacities = {16 * GiB, 16 * GiB};
  fleet.policy = SchedulerPolicy::kFirstFit;
  fleet.allocator = AllocatorKind::kCaching;
  fleet.workers = 2;

  constexpr int kRacers = 4;
  std::vector<std::string> digests(kRacers);
  std::vector<std::thread> racers;
  for (int t = 0; t < kRacers; ++t) {
    racers.emplace_back([&, t] { digests[t] = RunCluster(fleet, jobs).Digest(); });
  }
  for (std::thread& t : racers) t.join();
  for (int t = 1; t < kRacers; ++t) {
    EXPECT_EQ(digests[t], digests[0]) << t;
  }
}

}  // namespace
}  // namespace stalloc
