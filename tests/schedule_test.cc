#include "src/trainsim/schedule.h"

#include <string>

#include <gtest/gtest.h>

namespace stalloc {
namespace {

TEST(Schedule1F1B, SingleStageAlternatesStrictly) {
  auto steps = Build1F1BSchedule(/*pp=*/1, /*rank=*/0, /*m=*/4);
  ASSERT_EQ(steps.size(), 8u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(steps[2 * i].kind, ScheduleStep::Kind::kForward);
    EXPECT_EQ(steps[2 * i].microbatch, i);
    EXPECT_EQ(steps[2 * i + 1].kind, ScheduleStep::Kind::kBackward);
    EXPECT_EQ(steps[2 * i + 1].microbatch, i);
  }
  EXPECT_EQ(PeakInFlight(steps), 1);
}

TEST(Schedule1F1B, FirstStageWarmupEqualsPipelineDepth) {
  // Rank 0 of pp=4: warmup = 3 forwards before the first backward.
  auto steps = Build1F1BSchedule(4, 0, 8);
  EXPECT_EQ(steps[0].kind, ScheduleStep::Kind::kForward);
  EXPECT_EQ(steps[1].kind, ScheduleStep::Kind::kForward);
  EXPECT_EQ(steps[2].kind, ScheduleStep::Kind::kForward);
  EXPECT_EQ(steps[3].kind, ScheduleStep::Kind::kForward);  // steady-state F before first B
  EXPECT_EQ(steps[4].kind, ScheduleStep::Kind::kBackward);
  EXPECT_EQ(PeakInFlight(steps), 4);  // pp - rank in-flight microbatches
}

TEST(Schedule1F1B, LastStageHasNoWarmup) {
  auto steps = Build1F1BSchedule(4, 3, 8);
  EXPECT_EQ(steps[0].kind, ScheduleStep::Kind::kForward);
  EXPECT_EQ(steps[1].kind, ScheduleStep::Kind::kBackward);
  EXPECT_EQ(PeakInFlight(steps), 1);
}

TEST(ScheduleInterleaved, FallsBackTo1F1BWithOneChunk) {
  auto a = BuildInterleavedSchedule(2, 0, 8, 1);
  auto b = Build1F1BSchedule(2, 0, 8);
  EXPECT_EQ(a, b);
}

TEST(ScheduleInterleaved, HigherInFlightThan1F1B) {
  // VPP raises peak activation pressure on early ranks — the memory cost of the technique.
  auto plain = Build1F1BSchedule(2, 0, 8);
  auto vpp = BuildInterleavedSchedule(2, 0, 8, 2);
  EXPECT_GT(PeakInFlight(vpp), PeakInFlight(plain));
}

TEST(ScheduleInterleavedDeathTest, RequiresDivisibleMicrobatches) {
  EXPECT_DEATH(BuildInterleavedSchedule(4, 0, 6, 2), "divisible");
}

struct ScheduleCase {
  int pp;
  int rank;
  int m;
  int chunks;
};

class ScheduleValidityTest : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ScheduleValidityTest, SatisfiesInvariants) {
  const auto& p = GetParam();
  auto steps = BuildInterleavedSchedule(p.pp, p.rank, p.m, p.chunks);
  ValidateSchedule(steps, p.m, p.chunks);  // aborts on violation
  EXPECT_EQ(steps.size(), static_cast<size_t>(p.m) * p.chunks * 2);
  EXPECT_GE(PeakInFlight(steps), 1);
  EXPECT_LE(PeakInFlight(steps), p.m * p.chunks);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleValidityTest,
    ::testing::Values(ScheduleCase{1, 0, 1, 1}, ScheduleCase{1, 0, 8, 1}, ScheduleCase{2, 0, 8, 1},
                      ScheduleCase{2, 1, 8, 1}, ScheduleCase{4, 0, 8, 1}, ScheduleCase{4, 2, 8, 1},
                      ScheduleCase{4, 3, 16, 1}, ScheduleCase{2, 0, 8, 2}, ScheduleCase{2, 1, 8, 2},
                      ScheduleCase{2, 0, 8, 4}, ScheduleCase{4, 0, 8, 2}, ScheduleCase{4, 3, 8, 2},
                      ScheduleCase{4, 1, 16, 4}, ScheduleCase{8, 0, 16, 2},
                      ScheduleCase{8, 7, 16, 2}),
    [](const ::testing::TestParamInfo<ScheduleCase>& info) {
      const auto& p = info.param;
      return "pp" + std::to_string(p.pp) + "r" + std::to_string(p.rank) + "m" +
             std::to_string(p.m) + "c" + std::to_string(p.chunks);
    });

}  // namespace
}  // namespace stalloc
