// Tests for the optional trainsim features: selective recomputation, the GPipe schedule, and
// the configuration tag machinery.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/trace/trace_stats.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/schedule.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

TrainConfig SmallConfig() {
  TrainConfig c;
  c.parallel.pp = 2;
  c.num_microbatches = 4;
  c.micro_batch_size = 4;
  return c;
}

TEST(SelectiveRecompute, PeakBetweenNoneAndFull) {
  TrainConfig none = SmallConfig();
  TrainConfig sel = SmallConfig();
  sel.opt.recompute = RecomputeMode::kSelective;
  TrainConfig full = SmallConfig();
  full.opt.recompute = RecomputeMode::kFull;

  const uint64_t p_none = PeakAllocated(WorkloadBuilder(Gpt2_345M(), none).Build(1));
  const uint64_t p_sel = PeakAllocated(WorkloadBuilder(Gpt2_345M(), sel).Build(1));
  const uint64_t p_full = PeakAllocated(WorkloadBuilder(Gpt2_345M(), full).Build(1));
  EXPECT_LT(p_full, p_sel);
  EXPECT_LT(p_sel, p_none);
}

TEST(SelectiveRecompute, TraceValidAndBalanced) {
  TrainConfig c = SmallConfig();
  c.opt.recompute = RecomputeMode::kSelective;
  Trace t = WorkloadBuilder(Llama2_7B(), c).Build(1);
  t.Validate();
  auto curve = LiveBytesCurve(t.events());
  EXPECT_EQ(curve.back().second, 0u);
}

TEST(GPipeSchedule, AllForwardsThenAllBackwards) {
  auto steps = BuildGPipeSchedule(4);
  ASSERT_EQ(steps.size(), 8u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(steps[static_cast<size_t>(i)].kind, ScheduleStep::Kind::kForward);
    EXPECT_EQ(steps[static_cast<size_t>(i)].microbatch, i);
  }
  // Backwards in reverse microbatch order (LIFO frees, Fig. 4).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(steps[static_cast<size_t>(4 + i)].kind, ScheduleStep::Kind::kBackward);
    EXPECT_EQ(steps[static_cast<size_t>(4 + i)].microbatch, 3 - i);
  }
  ValidateSchedule(steps, 4, 1);
  EXPECT_EQ(PeakInFlight(steps), 4);
}

TEST(GPipeSchedule, PeakExceeds1F1B) {
  TrainConfig pipe = SmallConfig();
  TrainConfig gpipe = SmallConfig();
  gpipe.opt.schedule = PipelineSchedule::kGPipe;
  const uint64_t p_1f1b = PeakAllocated(WorkloadBuilder(Gpt2_345M(), pipe).Build(1));
  const uint64_t p_gpipe = PeakAllocated(WorkloadBuilder(Gpt2_345M(), gpipe).Build(1));
  EXPECT_GT(p_gpipe, p_1f1b) << "GPipe holds all microbatches' activations simultaneously";
}

TEST(GPipeSchedule, TraceValid) {
  TrainConfig c = SmallConfig();
  c.opt.schedule = PipelineSchedule::kGPipe;
  Trace t = WorkloadBuilder(Gpt2_345M(), c).Build(1);
  t.Validate();
}

TEST(ConfigTags, ComposeAndReset) {
  TrainConfig base;
  base.parallel.pp = 2;
  TrainConfig zor = ApplyConfigTag(base, "ZOR");
  EXPECT_EQ(zor.opt.zero, ZeroStage::kStage1);
  EXPECT_TRUE(zor.opt.offload);
  EXPECT_EQ(zor.opt.recompute, RecomputeMode::kFull);
  EXPECT_EQ(zor.parallel.vpp_chunks, 1);

  TrainConfig v = ApplyConfigTag(zor, "V");
  EXPECT_EQ(v.opt.zero, ZeroStage::kNone);  // tags fully reset the optimization config
  EXPECT_FALSE(v.opt.offload);
  EXPECT_EQ(v.parallel.vpp_chunks, 2);

  EXPECT_EQ(ApplyConfigTag(v, "N").parallel.vpp_chunks, 1);
}

TEST(ConfigTags, TagRoundtripString) {
  OptimizationConfig opt;
  EXPECT_EQ(opt.Tag(), "N");
  opt.recompute = RecomputeMode::kFull;
  EXPECT_EQ(opt.Tag(), "R");
  opt.zero = ZeroStage::kStage1;
  EXPECT_EQ(opt.Tag(), "ZR");
  opt.offload = true;
  EXPECT_EQ(opt.Tag(), "ZOR");
}

TEST(ZeroStages, ProgressivelyShrinkPersistentMemory) {
  TrainConfig base = SmallConfig();
  base.parallel.dp = 4;
  uint64_t prev = ~uint64_t{0};
  for (ZeroStage stage : {ZeroStage::kNone, ZeroStage::kStage1, ZeroStage::kStage2,
                          ZeroStage::kStage3}) {
    TrainConfig c = base;
    c.opt.zero = stage;
    Trace t = WorkloadBuilder(Gpt2_345M(), c).Build(1);
    uint64_t persistent = 0;
    for (const auto& e : t.events()) {
      if (t.Classify(e) == LifespanClass::kPersistent) {
        persistent += e.size;
      }
    }
    EXPECT_LT(persistent, prev) << "stage " << static_cast<int>(stage);
    prev = persistent;
  }
}

}  // namespace
}  // namespace stalloc
