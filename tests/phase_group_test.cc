#include "src/core/phase_group.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace stalloc {
namespace {

MemoryEvent Ev(uint64_t id, uint64_t size, LogicalTime ts, LogicalTime te, PhaseId ps,
               PhaseId pe) {
  MemoryEvent e;
  e.id = id;
  e.size = size;
  e.ts = ts;
  e.te = te;
  e.ps = ps;
  e.pe = pe;
  return e;
}

bool ItemsConflict(const PlanDecision& a, const PlanDecision& b) {
  const bool time = a.event.ts < b.event.te && b.event.ts < a.event.te;
  const bool addr = a.addr < b.end_addr() && b.addr < a.end_addr();
  return time && addr;
}

void ExpectNoConflicts(const LocalPlan& plan) {
  for (size_t i = 0; i < plan.items.size(); ++i) {
    for (size_t j = i + 1; j < plan.items.size(); ++j) {
      EXPECT_FALSE(ItemsConflict(plan.items[i], plan.items[j]))
          << "items " << i << " and " << j << " conflict";
    }
  }
}

TEST(PackGroup, OverlappingEventsStackContiguously) {
  // Three fully-overlapping events: footprint must be the padded sum.
  std::vector<MemoryEvent> events = {Ev(0, 1024, 0, 10, 0, 1), Ev(1, 2048, 0, 10, 0, 1),
                                     Ev(2, 512, 0, 10, 0, 1)};
  LocalPlan plan = PackGroup(events, 0, 1);
  EXPECT_EQ(plan.footprint, 1024u + 2048u + 512u);
  ExpectNoConflicts(plan);
  EXPECT_DOUBLE_EQ(plan.Tmp(), 1.0);  // no bubbles: all live the whole span
}

TEST(PackGroup, DisjointEventsShareAddresses) {
  // Sequential (transient-style) events of equal size reuse the same slot.
  std::vector<MemoryEvent> events = {Ev(0, 1024, 0, 2, 0, 0), Ev(1, 1024, 2, 4, 0, 0),
                                     Ev(2, 1024, 4, 6, 0, 0)};
  LocalPlan plan = PackGroup(events, 0, 0);
  EXPECT_EQ(plan.footprint, 1024u);
  for (const auto& item : plan.items) {
    EXPECT_EQ(item.addr, 0u);
  }
  ExpectNoConflicts(plan);
}

TEST(PackGroup, PadsSizesToPlanAlign) {
  std::vector<MemoryEvent> events = {Ev(0, 100, 0, 5, 0, 1)};
  LocalPlan plan = PackGroup(events, 0, 1);
  EXPECT_EQ(plan.items[0].padded_size, kPlanAlign);
  EXPECT_EQ(plan.footprint, kPlanAlign);
}

TEST(PackGroup, PartialOverlapUsesGaps) {
  // e0 [0,4), e1 [4,8) can share; e2 [2,6) overlaps both and must go above.
  std::vector<MemoryEvent> events = {Ev(0, 512, 0, 4, 0, 1), Ev(1, 512, 4, 8, 0, 1),
                                     Ev(2, 512, 2, 6, 0, 1)};
  LocalPlan plan = PackGroup(events, 0, 1);
  EXPECT_EQ(plan.footprint, 1024u);
  ExpectNoConflicts(plan);
}

TEST(Tmp, ReflectsBubbles) {
  // One event of size 512 living half the span within a footprint of 512: TMP = 0.5.
  std::vector<MemoryEvent> events = {Ev(0, 512, 0, 5, 0, 1), Ev(1, 512, 5, 10, 0, 1)};
  LocalPlan plan = PackGroup(events, 0, 1);
  EXPECT_EQ(plan.footprint, 512u);  // disjoint -> shared slot
  EXPECT_DOUBLE_EQ(plan.Tmp(), 1.0);

  // Same two events but overlapping one tick: footprint 1024, bubbles appear.
  events = {Ev(0, 512, 0, 6, 0, 1), Ev(1, 512, 5, 10, 0, 1)};
  plan = PackGroup(events, 0, 1);
  EXPECT_EQ(plan.footprint, 1024u);
  EXPECT_NEAR(plan.Tmp(), (512.0 * 6 + 512.0 * 5) / (1024.0 * 10), 1e-9);
}

TEST(FusePlans, InsertsSmallIntoGapsWithoutGrowth) {
  // Big plan: one long-lived block [0,10) of 2048 and one late block [6,10) of 1024 stacked
  // above it. Small plan: a transient [1,3) of 1024 — fits exactly into the late block's slot
  // while that block is not yet live.
  LocalPlan big = PackGroup({Ev(0, 2048, 0, 10, 0, 3), Ev(1, 1024, 6, 10, 2, 3)}, 0, 3);
  ASSERT_EQ(big.footprint, 3072u);
  LocalPlan small = PackGroup({Ev(2, 1024, 1, 3, 0, 0)}, 0, 0);

  LocalPlan fused = FusePlans(big, small);
  EXPECT_EQ(fused.items.size(), 3u);
  EXPECT_EQ(fused.footprint, 3072u);  // no growth: reused the idle gap
  ExpectNoConflicts(fused);
}

TEST(FusePlans, StacksWhenNoGapExists) {
  // Everything overlaps: the small plan's item cannot reuse anything.
  LocalPlan big = PackGroup({Ev(0, 2048, 0, 10, 0, 1)}, 0, 1);
  LocalPlan small = PackGroup({Ev(1, 1024, 2, 8, 1, 1)}, 1, 1);
  LocalPlan fused = FusePlans(big, small);
  EXPECT_EQ(fused.footprint, 3072u);
  ExpectNoConflicts(fused);
}

TEST(FusePlans, PreservesItemCountAndIds) {
  Rng rng(7);
  std::vector<MemoryEvent> a_events;
  std::vector<MemoryEvent> b_events;
  for (uint64_t i = 0; i < 20; ++i) {
    const LogicalTime ts = rng.NextBelow(50);
    a_events.push_back(Ev(i, 512 * (1 + rng.NextBelow(4)), ts, ts + 1 + rng.NextBelow(30), 0, 1));
  }
  for (uint64_t i = 0; i < 15; ++i) {
    const LogicalTime ts = 50 + rng.NextBelow(50);
    b_events.push_back(
        Ev(100 + i, 512 * (1 + rng.NextBelow(4)), ts, ts + 1 + rng.NextBelow(20), 1, 2));
  }
  LocalPlan a = PackGroup(a_events, 0, 1);
  LocalPlan b = PackGroup(b_events, 1, 2);
  LocalPlan fused = FusePlans(a, b);
  EXPECT_EQ(fused.items.size(), 35u);
  EXPECT_EQ(fused.ps, 0);
  EXPECT_EQ(fused.pe, 2);
  ExpectNoConflicts(fused);
}

TEST(BuildPhaseGroups, GroupsByPhasePair) {
  std::vector<MemoryEvent> events = {
      Ev(0, 512, 0, 10, 0, 1), Ev(1, 512, 1, 9, 0, 1),   // group (0,1)
      Ev(2, 512, 12, 14, 2, 2), Ev(3, 512, 14, 16, 2, 2)  // group (2,2)
  };
  auto plans = BuildPhaseGroups(events, /*enable_fusion=*/false);
  EXPECT_EQ(plans.size(), 2u);
}

TEST(BuildPhaseGroups, FusionAcceptsTransientIntoScoped) {
  // Scoped group (phase 0 -> phase 1): two blocks alive [0,20) and [10, 20).
  // Transient group (0,0): short-lived blocks early in phase 0 that fit exactly into the
  // address range of the late scoped block before it comes alive.
  std::vector<MemoryEvent> events;
  events.push_back(Ev(0, 4096, 0, 20, 0, 1));
  events.push_back(Ev(1, 4096, 10, 20, 0, 1));
  // Transients, each 1 tick, within [1, 8): they can all share the late block's future slot.
  for (uint64_t i = 0; i < 6; ++i) {
    events.push_back(Ev(2 + i, 4096, 1 + i, 2 + i, 0, 0));
  }
  auto unfused = BuildPhaseGroups(events, /*enable_fusion=*/false);
  EXPECT_EQ(unfused.size(), 2u);
  auto fused = BuildPhaseGroups(events, /*enable_fusion=*/true);
  ASSERT_EQ(fused.size(), 1u) << "fusion should merge the transient group into the scoped group";
  EXPECT_EQ(fused[0].items.size(), 8u);
  EXPECT_EQ(fused[0].footprint, 8192u) << "transients must reuse the late block's address range";
  ExpectNoConflicts(fused[0]);
}

TEST(BuildPhaseGroups, FusionRejectsWhenWasteful) {
  // Two groups that fully overlap in time: fusing cannot reuse anything and only concatenates
  // footprints — the TMP criterion must reject (Fig. 7 right).
  std::vector<MemoryEvent> events = {
      Ev(0, 4096, 0, 10, 0, 1),  // group (0,1)
      Ev(1, 4096, 0, 10, 1, 1),  // group (1,1): same lifespan, adjacent phases
  };
  auto plans = BuildPhaseGroups(events, /*enable_fusion=*/true);
  EXPECT_EQ(plans.size(), 2u);
}

// Property: packing any random event set never produces conflicting placements.
class PackGroupPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PackGroupPropertyTest, NeverConflicts) {
  Rng rng(GetParam());
  std::vector<MemoryEvent> events;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    const LogicalTime ts = rng.NextBelow(200);
    events.push_back(Ev(static_cast<uint64_t>(i), 512 * (1 + rng.NextBelow(8)), ts,
                        ts + 1 + rng.NextBelow(100), 0, 1));
  }
  LocalPlan plan = PackGroup(events, 0, 1);
  ExpectNoConflicts(plan);
  // Footprint is at least the peak concurrent padded bytes (lower bound).
  EXPECT_GE(plan.footprint, StaticPlan::PeakPaddedBytes(plan.items) == 0
                                ? 0
                                : StaticPlan::PeakPaddedBytes(plan.items));
  EXPECT_LE(plan.Tmp(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackGroupPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace stalloc
