// servesim coverage: deterministic request generation, engine trace well-formedness,
// continuous-batching invariants and preemption-with-recompute under memory pressure.

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/servesim/engine.h"
#include "src/servesim/request_gen.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/trainsim/model_config.h"

namespace stalloc {
namespace {

std::string CsvOf(const Trace& t) {
  std::ostringstream os;
  WriteTraceCsv(t, os);
  return os.str();
}

TEST(RequestGen, DeterministicPerSeed) {
  for (const std::string& name : ScenarioNames()) {
    const ServeScenario scenario = ScenarioByName(name);
    auto a = GenerateRequests(scenario, 11);
    auto b = GenerateRequests(scenario, 11);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].arrival_step, b[i].arrival_step);
      EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
      EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
    }
    // A different seed must actually change the stream.
    auto c = GenerateRequests(scenario, 12);
    bool differs = false;
    for (size_t i = 0; i < a.size(); ++i) {
      differs |= a[i].prompt_tokens != c[i].prompt_tokens ||
                 a[i].arrival_step != c[i].arrival_step;
    }
    EXPECT_TRUE(differs) << name;
  }
}

TEST(RequestGen, StreamsAreWellFormed) {
  for (const std::string& name : ScenarioNames()) {
    const ServeScenario scenario = ScenarioByName(name);
    auto reqs = GenerateRequests(scenario, 3);
    ASSERT_EQ(reqs.size(), scenario.num_requests);
    for (size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(reqs[i].id, i);
      EXPECT_GE(reqs[i].prompt_tokens, 1u);
      EXPECT_GE(reqs[i].output_tokens, 1u);
      if (i > 0) {
        EXPECT_GE(reqs[i].arrival_step, reqs[i - 1].arrival_step) << name;
      }
    }
  }
}

TEST(RequestGen, BatchScenarioArrivesAtStepZero) {
  for (const auto& r : GenerateRequests(BatchOfflineScenario(), 5)) {
    EXPECT_EQ(r.arrival_step, 0u);
  }
}

TEST(RequestGen, ScenarioByNameCoversAllPresets) {
  for (const std::string& name : ScenarioNames()) {
    EXPECT_EQ(ScenarioByName(name).name, name);
  }
}

TEST(Engine, TraceIsByteIdenticalPerSeed) {
  const ModelConfig model = ModelByName("gpt2");
  for (const std::string& name : ScenarioNames()) {
    ServeScenario scenario = ScenarioByName(name);
    scenario.num_requests = std::min<uint32_t>(scenario.num_requests, 16);
    ServeTraceResult a = BuildServeTrace(model, scenario, EngineConfig{}, 99);
    ServeTraceResult b = BuildServeTrace(model, scenario, EngineConfig{}, 99);
    EXPECT_EQ(CsvOf(a.trace), CsvOf(b.trace)) << name;
    ServeTraceResult c = BuildServeTrace(model, scenario, EngineConfig{}, 100);
    EXPECT_NE(CsvOf(a.trace), CsvOf(c.trace)) << name;
  }
}

TEST(Engine, TracesValidateAcrossPresets) {
  const ModelConfig model = ModelByName("gpt2");
  for (const std::string& name : ScenarioNames()) {
    ServeScenario scenario = ScenarioByName(name);
    scenario.num_requests = std::min<uint32_t>(scenario.num_requests, 24);
    ServeTraceResult r = BuildServeTrace(model, scenario, EngineConfig{}, 1);
    r.trace.Validate();
    EXPECT_GT(r.trace.size(), 0u);
    EXPECT_EQ(r.stats.num_requests, scenario.num_requests);
    EXPECT_EQ(r.stats.completed + r.stats.rejected, scenario.num_requests)
        << name << ": engine must drain";
    EXPECT_GT(r.stats.engine_steps, 0u);
  }
}

TEST(Engine, StatsInvariantsHold) {
  const ModelConfig model = ModelByName("gpt2");
  EngineConfig engine;
  engine.max_batch = 4;
  ServeScenario scenario = ChatScenario();
  scenario.num_requests = 24;
  ServeTraceResult r = BuildServeTrace(model, scenario, engine, 17);
  EXPECT_LE(r.stats.peak_batch, engine.max_batch);
  EXPECT_GT(r.stats.peak_batch, 0);
  EXPECT_GT(r.stats.tokens_admitted, 0u);
  EXPECT_GT(r.stats.tokens_generated, 0u);
  EXPECT_LE(r.stats.peak_kv_bytes, engine.kv_budget_bytes);
  // Every KV block event has exactly the workload's block size.
  const uint64_t block = KvBlockBytes(model, engine);
  uint64_t kv_events = 0;
  for (const auto& e : r.trace.events()) {
    if (e.dyn && e.size == block) {
      ++kv_events;
    }
  }
  EXPECT_EQ(kv_events, r.stats.kv_blocks_allocated);
}

TEST(Engine, PreemptsAndRecomputesUnderMemoryPressure) {
  const ModelConfig model = ModelByName("gpt2");
  EngineConfig tight;
  tight.kv_budget_bytes = 1 * GiB;
  ServeTraceResult r = BuildServeTrace(model, BatchOfflineScenario(), tight, 5);
  EXPECT_GT(r.stats.preemptions, 0u) << "a 1 GiB KV budget must force preemption";
  // Drained run: every preemption is followed by exactly one recompute re-admission.
  EXPECT_EQ(r.stats.completed + r.stats.rejected, r.stats.num_requests);
  EXPECT_EQ(r.stats.recompute_admissions, r.stats.preemptions);

  // More budget, same stream -> no more preemptions than the tight run, and fewer KV blocks
  // (no recompute re-allocations).
  EngineConfig ample;
  ample.kv_budget_bytes = 16 * GiB;
  ServeTraceResult a = BuildServeTrace(model, BatchOfflineScenario(), ample, 5);
  EXPECT_LT(a.stats.preemptions, r.stats.preemptions);
  EXPECT_LE(a.stats.kv_blocks_allocated, r.stats.kv_blocks_allocated);
}

TEST(Engine, RejectsRequestsThatCanNeverFit) {
  const ModelConfig model = ModelByName("gpt2");
  EngineConfig tiny;
  // Budget below the KV of the smallest rag-long prompt (2048 tokens): everything is rejected.
  tiny.kv_budget_bytes = 1024ull * KvBytesPerToken(model);
  ServeScenario scenario = RagLongScenario();
  scenario.num_requests = 8;
  ServeTraceResult r = BuildServeTrace(model, scenario, tiny, 5);
  EXPECT_EQ(r.stats.rejected, 8u);
  EXPECT_EQ(r.stats.completed, 0u);
  EXPECT_EQ(r.stats.preemptions, 0u);
}

TEST(Engine, WeightsArePersistentAndOptional) {
  const ModelConfig model = ModelByName("gpt2");
  ServeScenario scenario = ChatScenario();
  scenario.num_requests = 4;
  ServeTraceResult with = BuildServeTrace(model, scenario, EngineConfig{}, 2);
  uint64_t persistent = 0;
  for (const auto& e : with.trace.events()) {
    if (with.trace.Classify(e) == LifespanClass::kPersistent) {
      ++persistent;
    }
  }
  // Embedding + one event per layer.
  EXPECT_EQ(persistent, static_cast<uint64_t>(model.num_layers) + 1);

  EngineConfig no_weights;
  no_weights.emit_weights = false;
  ServeTraceResult without = BuildServeTrace(model, scenario, no_weights, 2);
  for (const auto& e : without.trace.events()) {
    EXPECT_TRUE(e.dyn) << "without weights every serving event is dynamic";
  }
  EXPECT_LT(PeakAllocated(without.trace), PeakAllocated(with.trace));
}

TEST(Engine, KvBytesMatchModelShape) {
  const ModelConfig gpt2 = ModelByName("gpt2");
  // 2 (K+V) * layers * kv_heads * head_dim * 2 bytes.
  const uint64_t expect = 2ull * gpt2.num_layers * gpt2.num_kv_heads * gpt2.head_dim() * 2;
  EXPECT_EQ(KvBytesPerToken(gpt2), expect);
  EngineConfig engine;
  EXPECT_EQ(KvBlockBytes(gpt2, engine), engine.kv_block_tokens * expect);
  // GQA models have fewer KV heads than attention heads -> smaller KV per token.
  const ModelConfig qwen = ModelByName("qwen2.5-7b");
  EXPECT_LT(KvBytesPerToken(qwen) / qwen.num_layers / 2 / 2,
            qwen.hidden);  // kv_heads * head_dim < hidden
}

}  // namespace
}  // namespace stalloc
