// Round-trip coverage for src/trace/trace_io.*: CSV and binary serialization must be lossless,
// and a write -> read -> re-write cycle must reproduce the first serialization byte-for-byte
// (the determinism contract external plan-synthesis tooling relies on, §8).

#include "src/trace/trace_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/trace/trace_v2.h"

#include <gtest/gtest.h>

#include "src/servesim/engine.h"
#include "src/servesim/request_gen.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

Trace TinyTrace() {
  Trace t;
  t.set_name("tiny");
  PhaseId init = t.AddPhase(PhaseInfo{PhaseKind::kIterInit, -1, -1, 0, 2});
  PhaseId fwd = t.AddPhase(PhaseInfo{PhaseKind::kForward, 0, -1, 2, 5});
  LayerId layer = t.AddLayer(LayerInfo{"expert0", 2, 5});
  MemoryEvent weight;
  weight.size = 4096;
  weight.ts = 0;
  weight.te = 5;
  weight.ps = init;
  weight.pe = fwd;
  t.AddEvent(weight);
  MemoryEvent dyn;
  dyn.size = 1536;
  dyn.ts = 2;
  dyn.te = 4;
  dyn.ps = fwd;
  dyn.pe = fwd;
  dyn.dyn = true;
  dyn.ls = layer;
  dyn.le = layer;
  dyn.stream = kA2aStream;
  t.AddEvent(dyn);
  return t;
}

Trace TrainingTrace() {
  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 2;
  config.micro_batch_size = 2;
  return WorkloadBuilder(ModelByName("gpt2"), config).Build(7);
}

Trace ServingTrace() {
  ServeScenario scenario = ChatScenario();
  scenario.num_requests = 8;
  return BuildServeTrace(ModelByName("gpt2"), scenario, EngineConfig{}, 7).trace;
}

std::string CsvOf(const Trace& t) {
  std::ostringstream os;
  WriteTraceCsv(t, os);
  return os.str();
}

void ExpectTracesEqual(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.phases().size(), b.phases().size());
  ASSERT_EQ(a.layers().size(), b.layers().size());
  for (size_t i = 0; i < a.size(); ++i) {
    const MemoryEvent& ea = a.events()[i];
    const MemoryEvent& eb = b.events()[i];
    EXPECT_EQ(ea.size, eb.size) << i;
    EXPECT_EQ(ea.ts, eb.ts) << i;
    EXPECT_EQ(ea.te, eb.te) << i;
    EXPECT_EQ(ea.ps, eb.ps) << i;
    EXPECT_EQ(ea.pe, eb.pe) << i;
    EXPECT_EQ(ea.dyn, eb.dyn) << i;
    EXPECT_EQ(ea.ls, eb.ls) << i;
    EXPECT_EQ(ea.le, eb.le) << i;
    EXPECT_EQ(ea.stream, eb.stream) << i;
  }
}

TEST(TraceIo, CsvRoundTripIsByteIdentical) {
  for (const Trace& original : {TinyTrace(), TrainingTrace(), ServingTrace()}) {
    const std::string first = CsvOf(original);
    std::istringstream is(first);
    Trace reread;
    TraceIoError err;
    ASSERT_TRUE(ReadTraceCsv(is, &reread, &err)) << err.ToString();
    ExpectTracesEqual(original, reread);
    EXPECT_EQ(first, CsvOf(reread)) << "re-serialization must be byte-identical";
  }
}

TEST(TraceIo, BinaryRoundTripIsLossless) {
  for (const Trace& original : {TinyTrace(), TrainingTrace(), ServingTrace()}) {
    std::ostringstream os;
    WriteTraceBinary(original, os);
    std::istringstream is(os.str());
    Trace reread;
    TraceIoError err;
    ASSERT_TRUE(ReadTraceBinary(is, &reread, &err)) << err.ToString();
    ExpectTracesEqual(original, reread);
    // Binary -> binary is byte-identical too.
    std::ostringstream os2;
    WriteTraceBinary(reread, os2);
    EXPECT_EQ(os.str(), os2.str());
  }
}

TEST(TraceIo, CsvAndBinaryAgree) {
  const Trace original = TrainingTrace();
  std::ostringstream bin;
  WriteTraceBinary(original, bin);
  std::istringstream bin_is(bin.str());
  Trace from_binary;
  TraceIoError err;
  ASSERT_TRUE(ReadTraceBinary(bin_is, &from_binary, &err)) << err.ToString();
  EXPECT_EQ(CsvOf(original), CsvOf(from_binary));
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = TinyTrace();
  const std::string csv_path = ::testing::TempDir() + "/trace_io_test.csv";
  const std::string bin_path = ::testing::TempDir() + "/trace_io_test.bin";
  ASSERT_TRUE(WriteTraceCsvFile(original, csv_path));
  ASSERT_TRUE(WriteTraceBinaryFile(original, bin_path));
  Trace from_csv, from_bin;
  TraceIoError err;
  ASSERT_TRUE(ReadTraceCsvFile(csv_path, &from_csv, &err)) << err.ToString();
  ASSERT_TRUE(ReadTraceBinaryFile(bin_path, &from_bin, &err)) << err.ToString();
  ExpectTracesEqual(original, from_csv);
  ExpectTracesEqual(original, from_bin);
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(TraceIo, WriteToUnwritablePathFails) {
  EXPECT_FALSE(WriteTraceCsvFile(TinyTrace(), "/nonexistent-dir/trace.csv"));
  EXPECT_FALSE(WriteTraceBinaryFile(TinyTrace(), "/nonexistent-dir/trace.bin"));
  EXPECT_FALSE(WriteTraceV2File(TinyTrace(), "/nonexistent-dir/trace.stlc"));
}

TEST(TraceIo, ReadersReportMissingFiles) {
  Trace out;
  TraceIoError err;
  EXPECT_FALSE(ReadTraceCsvFile("/nonexistent-dir/trace.csv", &out, &err));
  EXPECT_FALSE(ReadTraceBinaryFile("/nonexistent-dir/trace.bin", &out, &err));
  EXPECT_FALSE(ReadTraceAnyFile("/nonexistent-dir/trace.any", &out, &err));
  TraceView view;
  EXPECT_FALSE(view.Open("/nonexistent-dir/trace.stlc", &err));
}

TEST(TraceIo, CsvRejectsMalformedRowWithByteOffset) {
  const std::string good = CsvOf(TinyTrace());
  // Replace the last event row's size field with garbage; the reported offset must point at
  // the start of that row, not 0 and not EOF.
  const size_t header_end = good.find("id,size");
  const size_t row2 = good.find('\n', good.find('\n', header_end) + 1) + 1;
  std::string bad = good.substr(0, row2) + "1,notanumber,2,4,1,1,1,0,0,4\n";
  std::istringstream is(bad);
  Trace out;
  TraceIoError err;
  ASSERT_FALSE(ReadTraceCsv(is, &out, &err));
  EXPECT_NE(err.message.find("malformed"), std::string::npos) << err.message;
  EXPECT_EQ(err.byte_offset, row2);
}

TEST(TraceIo, CsvRejectsNonPositiveLifespan) {
  std::istringstream is("id,size,ts,te,ps,pe,dyn,ls,le,stream\n0,64,5,5,-1,-1,0,-1,-1,0\n");
  Trace out;
  TraceIoError err;
  ASSERT_FALSE(ReadTraceCsv(is, &out, &err));
  EXPECT_NE(err.message.find("lifespan"), std::string::npos) << err.message;
}

TEST(TraceIo, BinaryRejectsTruncationWithByteOffset) {
  std::ostringstream os;
  WriteTraceBinary(TinyTrace(), os);
  const std::string full = os.str();
  std::istringstream is(full.substr(0, full.size() - 7));
  Trace out;
  TraceIoError err;
  ASSERT_FALSE(ReadTraceBinary(is, &out, &err));
  EXPECT_NE(err.message.find("truncated"), std::string::npos) << err.message;
  EXPECT_GT(err.byte_offset, 0u);
  EXPECT_LE(err.byte_offset, full.size());
}

// --- columnar v2 ---

std::string ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(TraceV2, BulkRoundTripMaterializesIdentically) {
  for (const Trace& original : {TinyTrace(), TrainingTrace(), ServingTrace()}) {
    const std::string path = ::testing::TempDir() + "/trace_v2_roundtrip.stlc";
    ASSERT_TRUE(WriteTraceV2File(original, path));
    TraceView view;
    TraceIoError err;
    ASSERT_TRUE(view.Open(path, &err)) << err.ToString();
    EXPECT_EQ(view.num_events(), original.size());
    EXPECT_EQ(view.num_ops(), original.Ops().size());
    EXPECT_EQ(view.end_time(), original.end_time());
    EXPECT_EQ(view.name(), original.name());
    Trace materialized = view.Materialize();
    ExpectTracesEqual(original, materialized);
    // Event ids carry over verbatim, so re-converting reproduces the file byte-for-byte.
    const std::string path2 = ::testing::TempDir() + "/trace_v2_roundtrip2.stlc";
    ASSERT_TRUE(WriteTraceV2File(materialized, path2));
    EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(path2));
    std::remove(path.c_str());
    std::remove(path2.c_str());
  }
}

TEST(TraceV2, ViewColumnsMatchEvents) {
  const Trace original = TinyTrace();
  const std::string path = ::testing::TempDir() + "/trace_v2_columns.stlc";
  ASSERT_TRUE(WriteTraceV2File(original, path));
  TraceView view;
  TraceIoError err;
  ASSERT_TRUE(view.Open(path, &err)) << err.ToString();
  for (uint64_t i = 0; i < view.num_events(); ++i) {
    const MemoryEvent& want = original.events()[i];
    EXPECT_EQ(view.ts()[i], want.ts);
    EXPECT_EQ(view.te()[i], want.te);
    EXPECT_EQ(view.sizes()[i], want.size);
    EXPECT_EQ(view.ps()[i], want.ps);
    EXPECT_EQ(view.pe()[i], want.pe);
    EXPECT_EQ(view.ls()[i], want.ls);
    EXPECT_EQ(view.le()[i], want.le);
    EXPECT_EQ((view.flags()[i] & 1) != 0, want.dyn);
    EXPECT_EQ(view.stream()[i], want.stream);
  }
  // Op columns persist Trace::Ops() order exactly.
  const auto& ops = original.Ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(view.op_time()[i], ops[i].time);
    EXPECT_EQ(view.op_ref()[i] >> 1, ops[i].event_id);
    EXPECT_EQ((view.op_ref()[i] & 1) != 0, ops[i].kind == TraceOp::Kind::kFree);
  }
  std::remove(path.c_str());
}

TEST(TraceV2, StreamWriterMatchesBulkWriterByteForByte) {
  // Interleaved lifetimes emitted in op order: open order == id order, but closes interleave.
  const std::string stream_path = ::testing::TempDir() + "/trace_v2_stream.stlc";
  TraceV2StreamWriter w(stream_path, 3, "streamed");
  ASSERT_TRUE(w.ok());
  PhaseId p = w.AddPhase(PhaseInfo{PhaseKind::kForward, 0, -1, 0, 6});
  const uint64_t e0 = w.OpenEvent(1024, 0, p, kInvalidLayer, false, kComputeStream);
  const uint64_t e1 = w.OpenEvent(2048, 1, p, kInvalidLayer, false, kP2pStream);
  w.CloseEvent(e0, 2, p, kInvalidLayer);
  const uint64_t e2 = w.OpenEvent(512, 3, p, kInvalidLayer, false, kComputeStream);
  w.CloseEvent(e1, 4, p, kInvalidLayer);
  w.CloseEvent(e2, 5, p, kInvalidLayer);
  ASSERT_TRUE(w.Finish());

  Trace t;
  t.set_name("streamed");
  PhaseId tp = t.AddPhase(PhaseInfo{PhaseKind::kForward, 0, -1, 0, 6});
  MemoryEvent a;
  a.size = 1024;
  a.ts = 0;
  a.te = 2;
  a.ps = tp;
  a.pe = tp;
  t.AddEvent(a);
  MemoryEvent b;
  b.size = 2048;
  b.ts = 1;
  b.te = 4;
  b.ps = tp;
  b.pe = tp;
  b.stream = kP2pStream;
  t.AddEvent(b);
  MemoryEvent c;
  c.size = 512;
  c.ts = 3;
  c.te = 5;
  c.ps = tp;
  c.pe = tp;
  t.AddEvent(c);
  const std::string bulk_path = ::testing::TempDir() + "/trace_v2_bulk.stlc";
  ASSERT_TRUE(WriteTraceV2File(t, bulk_path));
  EXPECT_EQ(ReadFileBytes(stream_path), ReadFileBytes(bulk_path));
  std::remove(stream_path.c_str());
  std::remove(bulk_path.c_str());
}

TEST(TraceV2, EmptyAndSingleEventTraces) {
  const std::string path = ::testing::TempDir() + "/trace_v2_edge.stlc";
  Trace empty;
  empty.set_name("empty");
  ASSERT_TRUE(WriteTraceV2File(empty, path));
  {
    TraceView view;
    TraceIoError err;
    ASSERT_TRUE(view.Open(path, &err)) << err.ToString();
    EXPECT_EQ(view.num_events(), 0u);
    EXPECT_EQ(view.end_time(), 0u);
    EXPECT_TRUE(view.Materialize().empty());
  }
  Trace single;
  MemoryEvent e;
  e.size = 4096;
  e.ts = 1;
  e.te = 9;
  single.AddEvent(e);
  ASSERT_TRUE(WriteTraceV2File(single, path));
  {
    TraceView view;
    TraceIoError err;
    ASSERT_TRUE(view.Open(path, &err)) << err.ToString();
    EXPECT_EQ(view.num_events(), 1u);
    EXPECT_EQ(view.end_time(), 9u);
    ExpectTracesEqual(single, view.Materialize());
  }
  std::remove(path.c_str());
}

TEST(TraceV2, RejectsTruncationAnywhere) {
  const std::string path = ::testing::TempDir() + "/trace_v2_trunc.stlc";
  ASSERT_TRUE(WriteTraceV2File(TinyTrace(), path));
  const std::string full = ReadFileBytes(path);
  // Chop at a spread of prefixes: header-only, mid-column, missing trailer byte.
  for (size_t keep : {size_t{0}, size_t{16}, size_t{40}, full.size() / 2, full.size() - 1}) {
    WriteFileBytes(path, full.substr(0, keep));
    TraceView view;
    TraceIoError err;
    EXPECT_FALSE(view.Open(path, &err)) << "accepted a " << keep << "-byte prefix";
    EXPECT_FALSE(view.is_open());
  }
  std::remove(path.c_str());
}

TEST(TraceV2, RejectsCorruptedColumns) {
  const std::string path = ::testing::TempDir() + "/trace_v2_corrupt.stlc";
  const Trace original = TinyTrace();
  ASSERT_TRUE(WriteTraceV2File(original, path));
  const std::string full = ReadFileBytes(path);
  const TraceV2Layout layout = TraceV2Layout::For(original.size());
  // A deterministic fuzz sweep: flip a byte in each cross-checked section and expect the
  // validator to notice. Columns without a redundant partner (e.g. size — any nonzero value
  // is a legal size) can absorb a flip, so the sweep targets the time/op columns where the
  // op_time ↔ ts/te cross-check and the order invariant catch every perturbation.
  struct Target {
    uint64_t off;
    const char* what;
  };
  const Target targets[] = {
      {0, "magic"},
      {layout.ts_off, "ts column"},
      {layout.te_off, "te column"},
      {layout.op_time_off, "op_time column"},
      {layout.op_ref_off, "op_ref column"},
  };
  for (const Target& t : targets) {
    std::string bad = full;
    bad[t.off] = static_cast<char>(bad[t.off] ^ 0x5a);
    WriteFileBytes(path, bad);
    TraceView view;
    TraceIoError err;
    EXPECT_FALSE(view.Open(path, &err)) << "corruption in " << t.what << " went undetected";
  }
  // And ReadTraceAnyFile surfaces the same rejection instead of crashing.
  std::string bad = full;
  bad[layout.op_ref_off] = static_cast<char>(bad[layout.op_ref_off] ^ 0x5a);
  WriteFileBytes(path, bad);
  Trace out;
  TraceIoError err;
  EXPECT_FALSE(ReadTraceAnyFile(path, &out, &err));
  std::remove(path.c_str());
}

TEST(TraceV2, ReadTraceAnyFileSniffsAllFormats) {
  const Trace original = TinyTrace();
  const std::string csv_path = ::testing::TempDir() + "/trace_any.csv";
  const std::string bin_path = ::testing::TempDir() + "/trace_any.bin";
  const std::string v2_path = ::testing::TempDir() + "/trace_any.stlc";
  ASSERT_TRUE(WriteTraceCsvFile(original, csv_path));
  ASSERT_TRUE(WriteTraceBinaryFile(original, bin_path));
  ASSERT_TRUE(WriteTraceV2File(original, v2_path));
  for (const std::string& path : {csv_path, bin_path, v2_path}) {
    Trace out;
    TraceIoError err;
    ASSERT_TRUE(ReadTraceAnyFile(path, &out, &err)) << path << ": " << err.ToString();
    ExpectTracesEqual(original, out);
  }
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
  std::remove(v2_path.c_str());
}

}  // namespace
}  // namespace stalloc
