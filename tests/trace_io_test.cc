// Round-trip coverage for src/trace/trace_io.*: CSV and binary serialization must be lossless,
// and a write -> read -> re-write cycle must reproduce the first serialization byte-for-byte
// (the determinism contract external plan-synthesis tooling relies on, §8).

#include "src/trace/trace_io.h"

#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/servesim/engine.h"
#include "src/servesim/request_gen.h"
#include "src/trainsim/model_config.h"
#include "src/trainsim/workload.h"

namespace stalloc {
namespace {

Trace TinyTrace() {
  Trace t;
  t.set_name("tiny");
  PhaseId init = t.AddPhase(PhaseInfo{PhaseKind::kIterInit, -1, -1, 0, 2});
  PhaseId fwd = t.AddPhase(PhaseInfo{PhaseKind::kForward, 0, -1, 2, 5});
  LayerId layer = t.AddLayer(LayerInfo{"expert0", 2, 5});
  MemoryEvent weight;
  weight.size = 4096;
  weight.ts = 0;
  weight.te = 5;
  weight.ps = init;
  weight.pe = fwd;
  t.AddEvent(weight);
  MemoryEvent dyn;
  dyn.size = 1536;
  dyn.ts = 2;
  dyn.te = 4;
  dyn.ps = fwd;
  dyn.pe = fwd;
  dyn.dyn = true;
  dyn.ls = layer;
  dyn.le = layer;
  dyn.stream = kA2aStream;
  t.AddEvent(dyn);
  return t;
}

Trace TrainingTrace() {
  TrainConfig config;
  config.parallel.pp = 2;
  config.num_microbatches = 2;
  config.micro_batch_size = 2;
  return WorkloadBuilder(ModelByName("gpt2"), config).Build(7);
}

Trace ServingTrace() {
  ServeScenario scenario = ChatScenario();
  scenario.num_requests = 8;
  return BuildServeTrace(ModelByName("gpt2"), scenario, EngineConfig{}, 7).trace;
}

std::string CsvOf(const Trace& t) {
  std::ostringstream os;
  WriteTraceCsv(t, os);
  return os.str();
}

void ExpectTracesEqual(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.phases().size(), b.phases().size());
  ASSERT_EQ(a.layers().size(), b.layers().size());
  for (size_t i = 0; i < a.size(); ++i) {
    const MemoryEvent& ea = a.events()[i];
    const MemoryEvent& eb = b.events()[i];
    EXPECT_EQ(ea.size, eb.size) << i;
    EXPECT_EQ(ea.ts, eb.ts) << i;
    EXPECT_EQ(ea.te, eb.te) << i;
    EXPECT_EQ(ea.ps, eb.ps) << i;
    EXPECT_EQ(ea.pe, eb.pe) << i;
    EXPECT_EQ(ea.dyn, eb.dyn) << i;
    EXPECT_EQ(ea.ls, eb.ls) << i;
    EXPECT_EQ(ea.le, eb.le) << i;
    EXPECT_EQ(ea.stream, eb.stream) << i;
  }
}

TEST(TraceIo, CsvRoundTripIsByteIdentical) {
  for (const Trace& original : {TinyTrace(), TrainingTrace(), ServingTrace()}) {
    const std::string first = CsvOf(original);
    std::istringstream is(first);
    Trace reread = ReadTraceCsv(is);
    ExpectTracesEqual(original, reread);
    EXPECT_EQ(first, CsvOf(reread)) << "re-serialization must be byte-identical";
  }
}

TEST(TraceIo, BinaryRoundTripIsLossless) {
  for (const Trace& original : {TinyTrace(), TrainingTrace(), ServingTrace()}) {
    std::ostringstream os;
    WriteTraceBinary(original, os);
    std::istringstream is(os.str());
    Trace reread = ReadTraceBinary(is);
    ExpectTracesEqual(original, reread);
    // Binary -> binary is byte-identical too.
    std::ostringstream os2;
    WriteTraceBinary(reread, os2);
    EXPECT_EQ(os.str(), os2.str());
  }
}

TEST(TraceIo, CsvAndBinaryAgree) {
  const Trace original = TrainingTrace();
  std::ostringstream bin;
  WriteTraceBinary(original, bin);
  std::istringstream bin_is(bin.str());
  Trace from_binary = ReadTraceBinary(bin_is);
  EXPECT_EQ(CsvOf(original), CsvOf(from_binary));
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = TinyTrace();
  const std::string csv_path = ::testing::TempDir() + "/trace_io_test.csv";
  const std::string bin_path = ::testing::TempDir() + "/trace_io_test.bin";
  ASSERT_TRUE(WriteTraceCsvFile(original, csv_path));
  ASSERT_TRUE(WriteTraceBinaryFile(original, bin_path));
  ExpectTracesEqual(original, ReadTraceCsvFile(csv_path));
  ExpectTracesEqual(original, ReadTraceBinaryFile(bin_path));
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(TraceIo, WriteToUnwritablePathFails) {
  EXPECT_FALSE(WriteTraceCsvFile(TinyTrace(), "/nonexistent-dir/trace.csv"));
  EXPECT_FALSE(WriteTraceBinaryFile(TinyTrace(), "/nonexistent-dir/trace.bin"));
}

}  // namespace
}  // namespace stalloc
