// Coverage for src/common/worker_pool.*: the fixed pool under the sharded fleet's windowed
// ParallelFor. The contract: every index in [0, n) runs exactly once per batch, the call
// returns only after all n finished, workers <= 1 degrades to a plain inline loop (the serial
// fleet path), and one pool survives many batches of different sizes back to back.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/worker_pool.h"

namespace stalloc {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(WorkerPool, SerialPoolRunsInlineOnTheCallingThread) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.workers(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(16);
  pool.ParallelFor(ran.size(), [&](size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ran) {
    EXPECT_EQ(id, caller);
  }
}

TEST(WorkerPool, ReturnsOnlyAfterAllWorkFinished) {
  WorkerPool pool(4);
  std::atomic<int> done{0};
  pool.ParallelFor(64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);  // the barrier: nothing still in flight after return
}

TEST(WorkerPool, SurvivesManyBatchesOfVaryingSize) {
  WorkerPool pool(3);
  uint64_t expected = 0;
  std::atomic<uint64_t> total{0};
  for (size_t n : {1u, 7u, 0u, 100u, 2u, 33u}) {
    pool.ParallelFor(n, [&](size_t i) { total.fetch_add(i + 1); });
    expected += n * (n + 1) / 2;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(WorkerPool, SingleItemBatchSkipsTheThreadMachinery) {
  WorkerPool pool(8);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran;
  pool.ParallelFor(1, [&](size_t) { ran = std::this_thread::get_id(); });
  EXPECT_EQ(ran, caller);  // n == 1 runs inline regardless of pool size
}

}  // namespace
}  // namespace stalloc
